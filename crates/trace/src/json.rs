//! A deliberately tiny JSON subset: flat objects whose values are
//! unsigned 64-bit integers, strings, or arrays of unsigned integers.
//!
//! That subset is all the trace schema needs, and staying inside it buys
//! two properties serde could not give us here (no external crates are
//! available): the encoder and parser are small enough to audit, and —
//! because there are no floats — `parse(encode(x)) == x` is *exact*, so
//! the CI round-trip check catches any schema drift byte-for-byte.

use std::fmt::Write as _;

/// A value in a trace object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// An unsigned integer (all numeric trace fields are u64-safe).
    U64(u64),
    /// A string (event kinds, state names, causes).
    Str(String),
    /// An array of small unsigned integers (hash-tree paths).
    Arr(Vec<u64>),
}

impl JsonValue {
    /// The integer inside, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if this is one.
    pub fn as_arr(&self) -> Option<&[u64]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended before the object was closed.
    UnexpectedEnd,
    /// An unexpected byte at the given offset.
    Unexpected(usize, char),
    /// A number overflowed u64.
    NumberOverflow(usize),
    /// A string escape we do not emit (and therefore do not accept).
    BadEscape(usize),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::UnexpectedEnd => write!(f, "unexpected end of input"),
            JsonError::Unexpected(at, c) => write!(f, "unexpected {c:?} at byte {at}"),
            JsonError::NumberOverflow(at) => write!(f, "number overflows u64 at byte {at}"),
            JsonError::BadEscape(at) => write!(f, "unsupported string escape at byte {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Builds one flat JSON object, preserving insertion order.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    out: String,
    any: bool,
}

impl ObjectWriter {
    /// Start an object.
    pub fn new() -> Self {
        ObjectWriter {
            out: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push('"');
        self.out.push_str(key); // keys are static identifiers, never escaped
        self.out.push_str("\":");
    }

    /// Append an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Append a string field (escaping the characters we accept back).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
        self
    }

    /// Append an array-of-integers field.
    pub fn arr(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// Close the object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
}

/// Parse one flat object into `(key, value)` pairs in document order.
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    let b = line.as_bytes();
    let mut p = Cursor { b, i: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.i += 1;
        p.skip_ws();
        return p.finish(fields);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.value()?;
        fields.push((key, value));
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            Some(c) => return Err(JsonError::Unexpected(p.i - 1, c as char)),
            None => return Err(JsonError::UnexpectedEnd),
        }
    }
    p.skip_ws();
    p.finish(fields)
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(JsonError::Unexpected(self.i - 1, c as char)),
            None => Err(JsonError::UnexpectedEnd),
        }
    }

    fn finish(
        &mut self,
        fields: Vec<(String, JsonValue)>,
    ) -> Result<Vec<(String, JsonValue)>, JsonError> {
        match self.peek() {
            None => Ok(fields),
            Some(c) => Err(JsonError::Unexpected(self.i, c as char)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                None => return Err(JsonError::UnexpectedEnd),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(_) => return Err(JsonError::BadEscape(self.i - 1)),
                    None => return Err(JsonError::UnexpectedEnd),
                },
                Some(c) if c < 0x80 => s.push(c as char),
                Some(first) => {
                    // Re-assemble a multi-byte UTF-8 scalar; the input came
                    // from a &str so the encoding is already valid.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.i - 1;
                    let end = (start + len).min(self.b.len());
                    let chunk = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| JsonError::Unexpected(start, first as char))?;
                    s.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        let start = self.i;
        let mut v: u64 = 0;
        let mut any = false;
        while let Some(c @ b'0'..=b'9') = self.peek() {
            any = true;
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(c - b'0')))
                .ok_or(JsonError::NumberOverflow(start))?;
            self.i += 1;
        }
        if !any {
            return match self.peek() {
                Some(c) => Err(JsonError::Unexpected(self.i, c as char)),
                None => Err(JsonError::UnexpectedEnd),
            };
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.number()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Arr(items)),
                        Some(c) => return Err(JsonError::Unexpected(self.i - 1, c as char)),
                        None => return Err(JsonError::UnexpectedEnd),
                    }
                }
            }
            Some(b'0'..=b'9') => Ok(JsonValue::U64(self.number()?)),
            Some(c) => Err(JsonError::Unexpected(self.i, c as char)),
            None => Err(JsonError::UnexpectedEnd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let mut w = ObjectWriter::new();
        w.str("ev", "fsm")
            .u64("t", 123_456_789)
            .str("name", "with \"quotes\" and \\slash\\")
            .arr("path", &[3, 0, 7]);
        let line = w.finish();
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields[0], ("ev".into(), JsonValue::Str("fsm".into())));
        assert_eq!(fields[1], ("t".into(), JsonValue::U64(123_456_789)));
        assert_eq!(
            fields[2].1,
            JsonValue::Str("with \"quotes\" and \\slash\\".into())
        );
        assert_eq!(fields[3].1, JsonValue::Arr(vec![3, 0, 7]));
    }

    #[test]
    fn empty_object_and_empty_array() {
        assert_eq!(parse_object("{}").unwrap(), vec![]);
        let fields = parse_object(r#"{"path":[]}"#).unwrap();
        assert_eq!(fields[0].1, JsonValue::Arr(vec![]));
    }

    #[test]
    fn rejects_floats_trailing_garbage_and_overflow() {
        assert!(parse_object(r#"{"t":1.5}"#).is_err());
        assert!(parse_object(r#"{"t":1} extra"#).is_err());
        assert!(parse_object(r#"{"t":99999999999999999999999}"#).is_err());
        assert!(parse_object(r#"{"t":-1}"#).is_err());
        assert!(parse_object(r#"{"t":"#).is_err());
    }

    #[test]
    fn tolerates_interior_whitespace() {
        let fields = parse_object(" { \"a\" : 1 , \"b\" : [ 2 , 3 ] } ").unwrap();
        assert_eq!(fields[0].1, JsonValue::U64(1));
        assert_eq!(fields[1].1, JsonValue::Arr(vec![2, 3]));
    }

    #[test]
    fn non_ascii_strings_survive() {
        let mut w = ObjectWriter::new();
        w.str("s", "naïve → done");
        let line = w.finish();
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields[0].1, JsonValue::Str("naïve → done".into()));
    }
}
