//! Flight recorder for the FANcY reproduction.
//!
//! The paper's headline claims are *timeline* claims — detection within
//! ~1 s of failure onset, reroute before TCP collapses (§5) — so an
//! experiment that only reports end-of-run aggregates cannot explain a
//! slow detection or a missed drop. This crate provides the replayable
//! record: a stream of typed [`TraceEvent`]s emitted by the simulator,
//! the FANcY data plane, the TCP model, and the incident layer, plus the
//! sinks that capture them and the JSONL encoding that persists them.
//!
//! Design rules, in priority order:
//!
//! 1. **Zero cost when disabled.** Nothing here is consulted unless a
//!    sink is installed; the instrumented crates guard every emission
//!    behind a single `Option` check (see `Kernel::trace` in
//!    `fancy-sim`), with event construction deferred into a closure.
//! 2. **Observational only.** A sink receives events but can never feed
//!    anything back into the simulation, so an attached recorder cannot
//!    perturb the schedule: traces are bit-identical with or without an
//!    observer, and across `FANCY_THREADS` settings.
//! 3. **No external dependencies.** The JSONL encoder *and* parser are
//!    hand-rolled ([`json`]); the schema is restricted to flat objects
//!    of unsigned integers, strings, and small byte arrays so that
//!    round-tripping is exact (no floats anywhere).

pub mod event;
pub mod json;
pub mod profile;
pub mod sink;

pub use event::{parse_jsonl, DropCause, ParseError, TraceEvent, UNIT_TREE};
pub use profile::Profiler;
pub use sink::{JsonlWriter, NullTraceSink, RingRecorder, SharedRecorder, TraceSink};
