//! Span-style wall-clock profiling.
//!
//! Complements the simulated-time trace: while [`crate::TraceEvent`]s
//! say what happened *inside* the experiment, the profiler says where
//! the *experiment runner* spent real time (building the scenario,
//! running the kernel, extracting the timeline, rendering the report).
//! Spans with the same label accumulate, so per-phase totals fall out of
//! a loop for free. Sweep reports surface these spans next to the
//! kernel telemetry.

use std::time::{Duration, Instant};

/// Accumulates labelled wall-clock spans.
#[derive(Debug, Default)]
pub struct Profiler {
    spans: Vec<(String, Duration)>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Time `f` under `label`, merging with any prior span of that label.
    pub fn time<R>(&mut self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(label, start.elapsed());
        out
    }

    /// Add a measured duration to `label`'s total.
    pub fn add(&mut self, label: &str, dur: Duration) {
        if let Some((_, total)) = self.spans.iter_mut().find(|(l, _)| l == label) {
            *total += dur;
        } else {
            self.spans.push((label.to_owned(), dur));
        }
    }

    /// The accumulated spans, in first-seen order.
    pub fn spans(&self) -> &[(String, Duration)] {
        &self.spans
    }

    /// Consume the profiler and keep the spans (e.g. to attach to a
    /// sweep report).
    pub fn into_spans(self) -> Vec<(String, Duration)> {
        self.spans
    }

    /// A one-line-per-span human summary.
    pub fn report(&self) -> String {
        let total: Duration = self.spans.iter().map(|(_, d)| *d).sum();
        let mut out = String::new();
        for (label, dur) in &self.spans {
            let pct = if total.is_zero() {
                0.0
            } else {
                100.0 * dur.as_secs_f64() / total.as_secs_f64()
            };
            out.push_str(&format!("{label:<24} {dur:>12?} {pct:5.1}%\n"));
        }
        out.push_str(&format!("{:<24} {total:>12?}\n", "total"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_by_label_and_keep_order() {
        let mut p = Profiler::new();
        p.add("parse", Duration::from_millis(2));
        p.add("render", Duration::from_millis(1));
        p.add("parse", Duration::from_millis(3));
        assert_eq!(p.spans().len(), 2);
        assert_eq!(p.spans()[0], ("parse".into(), Duration::from_millis(5)));
        assert_eq!(p.spans()[1].0, "render");
        let report = p.report();
        assert!(report.contains("parse"));
        assert!(report.contains("total"));
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut p = Profiler::new();
        let v = p.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.spans().len(), 1);
    }
}
