//! Trace sinks: where events go.
//!
//! A sink is installed on the simulation kernel (or handed to an offline
//! pass) and receives every emitted [`TraceEvent`]. Sinks are
//! observational only — they have no way to signal back — so attaching
//! one cannot change the simulation schedule.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// Receives trace events. `Send` so a sink can ride inside a sweep cell
/// that runs on a worker thread.
pub trait TraceSink: Send {
    /// Record one event. Events arrive in emission order, which is the
    /// kernel's deterministic dispatch order.
    fn record(&mut self, event: &TraceEvent);
}

/// Swallows everything (useful to measure tracing overhead itself).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTraceSink;

impl TraceSink for NullTraceSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// A bounded in-memory flight recorder. When full, the *oldest* events
/// are discarded — after an experiment you usually care about the most
/// recent window before the interesting moment.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the buffer into a vector, oldest first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Serialize the held events as JSONL (one line each, oldest first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }
}

/// A cloneable handle around a [`RingRecorder`]. Install one clone as
/// the kernel's sink and keep another to read the events back after the
/// run — this sidesteps the need to downcast a `Box<dyn TraceSink>`.
#[derive(Debug, Clone)]
pub struct SharedRecorder(Arc<Mutex<RingRecorder>>);

impl SharedRecorder {
    /// A shared recorder keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        SharedRecorder(Arc::new(Mutex::new(RingRecorder::new(capacity))))
    }

    /// Copy out the currently held events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.0
            .lock()
            .expect("recorder poisoned")
            .events()
            .cloned()
            .collect()
    }

    /// Serialize the held events as JSONL.
    pub fn to_jsonl(&self) -> String {
        self.0.lock().expect("recorder poisoned").to_jsonl()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.lock().expect("recorder poisoned").dropped()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.0.lock().expect("recorder poisoned").len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for SharedRecorder {
    fn record(&mut self, event: &TraceEvent) {
        self.0.lock().expect("recorder poisoned").record(event);
    }
}

/// Streams events as JSONL to any writer (a file, a `Vec<u8>`, …).
#[derive(Debug)]
pub struct JsonlWriter<W: Write + Send> {
    w: Option<W>,
    written: u64,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        JsonlWriter {
            w: Some(w),
            written: 0,
        }
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and hand back the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        let mut w = self.w.take().expect("writer present until dropped");
        w.flush()?;
        Ok(w)
    }
}

impl JsonlWriter<BufWriter<File>> {
    /// Create (truncating) a JSONL trace file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> TraceSink for JsonlWriter<W> {
    fn record(&mut self, event: &TraceEvent) {
        // An experiment trace is best-effort on I/O errors: a full disk
        // should not abort the simulation itself.
        if let Some(w) = self.w.as_mut() {
            let _ = writeln!(w, "{}", event.to_jsonl());
            self.written += 1;
        }
    }
}

impl<W: Write + Send> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        if let Some(w) = self.w.as_mut() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_jsonl;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::Reroute {
            t,
            node: 1,
            entry: 7,
            primary: 2,
            backup: 3,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = RingRecorder::new(3);
        for t in 1..=5 {
            r.record(&ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.events().map(TraceEvent::time_ns).collect();
        assert_eq!(ts, vec![3, 4, 5]);
    }

    #[test]
    fn shared_recorder_sees_events_through_clone() {
        let handle = SharedRecorder::new(16);
        let mut sink = handle.clone();
        sink.record(&ev(1));
        sink.record(&ev(2));
        assert_eq!(handle.len(), 2);
        assert_eq!(handle.snapshot()[0], ev(1));
        assert!(parse_jsonl(&handle.to_jsonl()).is_ok());
    }

    #[test]
    fn jsonl_writer_output_parses_back() {
        let mut w = JsonlWriter::new(Vec::new());
        w.record(&ev(1));
        w.record(&ev(2));
        assert_eq!(w.written(), 2);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, vec![ev(1), ev(2)]);
    }
}
