//! The packet slab: generational pooled storage for in-flight packets.
//!
//! Every packet that is on a wire or waiting in the event queue lives in
//! one [`PacketPool`] slot owned by the kernel; events carry an 8-byte
//! [`PacketRef`] instead of the ~100-byte [`Packet`] itself. That keeps
//! [`crate::event::Event`] small and `Copy` (cheap to move through the
//! scheduler) and recycles packet storage instead of allocating per hop.
//!
//! Slots are *generational*: each check-out bumps the slot's generation,
//! so a stale ref — one held after its packet was delivered, dropped or
//! forwarded — can never silently alias a newer packet. Using a stale
//! ref panics with a precise message; double frees are caught the same
//! way. This is the index-based event-core idiom of trace-driven
//! simulators, hardened with generations.

use crate::packet::Packet;

/// A generational handle to a pooled [`Packet`]. 8 bytes, `Copy`.
///
/// Obtained from the kernel when a packet is checked into the network
/// (send/inject) and handed to [`crate::node::Node::on_packet`] on
/// delivery. A ref is *consumed* by forwarding or taking the packet;
/// holding onto it afterwards makes it stale, and the pool will panic
/// rather than let a stale ref touch another packet's storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

impl PacketRef {
    /// Slot index (diagnostics only; slots are recycled freely).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }

    /// Slot generation this ref is valid for.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

struct Slot {
    gen: u32,
    pkt: Option<Packet>,
}

/// A generational slab of in-flight packets.
///
/// All counters are observational; nothing here feeds back into
/// simulation behavior, so pooling cannot change results.
#[derive(Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    recycled: u64,
    checked_in: u64,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check a packet in, returning its ref.
    ///
    /// The kernel stamps `uid`/`created` *before* insertion — check-in is
    /// the single point where packets enter the network, so an unstamped
    /// packet here means a caller bypassed the kernel's stamping path.
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> PacketRef {
        debug_assert!(
            pkt.uid != 0,
            "unstamped packet (uid 0) checked into the pool: packets must \
             enter the network through the kernel, which stamps uid/created"
        );
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        self.checked_in += 1;
        if let Some(idx) = self.free.pop() {
            self.recycled += 1;
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.pkt.is_none(), "free-list slot still occupied");
            slot.pkt = Some(pkt);
            PacketRef { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("packet pool exceeds u32 slots");
            self.slots.push(Slot {
                gen: 0,
                pkt: Some(pkt),
            });
            PacketRef { idx, gen: 0 }
        }
    }

    #[inline]
    fn slot(&self, r: PacketRef) -> &Slot {
        let slot = &self.slots[r.idx as usize];
        assert!(
            slot.gen == r.gen && slot.pkt.is_some(),
            "stale PacketRef {{idx: {}, gen: {}}} (slot gen {}): the packet was \
             already delivered, dropped or forwarded",
            r.idx,
            r.gen,
            slot.gen,
        );
        slot
    }

    /// Borrow the packet behind `r`.
    ///
    /// # Panics
    /// Panics if `r` is stale (the generational check failed).
    #[inline]
    pub fn get(&self, r: PacketRef) -> &Packet {
        self.slot(r).pkt.as_ref().expect("checked by slot()")
    }

    /// Mutably borrow the packet behind `r` (tag rewriting, header edits).
    ///
    /// # Panics
    /// Panics if `r` is stale.
    #[inline]
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        let _ = self.slot(r);
        self.slots[r.idx as usize]
            .pkt
            .as_mut()
            .expect("checked by slot()")
    }

    /// Check the packet out, consuming the ref and freeing the slot.
    ///
    /// # Panics
    /// Panics if `r` is stale (this is what catches double frees).
    #[inline]
    pub fn remove(&mut self, r: PacketRef) -> Packet {
        let _ = self.slot(r);
        let slot = &mut self.slots[r.idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.live -= 1;
        self.free.push(r.idx);
        slot.pkt.take().expect("checked by slot()")
    }

    /// Consume `r` and issue a fresh ref to the *same* slot, without
    /// moving the packet. Used when a packet is forwarded: the old ref
    /// (still held by the dispatch loop) goes stale, the new ref rides
    /// the next arrival event. Counts as a recycle.
    #[inline]
    pub fn rebrand(&mut self, r: PacketRef) -> PacketRef {
        let _ = self.slot(r);
        let slot = &mut self.slots[r.idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.recycled += 1;
        PacketRef {
            idx: r.idx,
            gen: slot.gen,
        }
    }

    /// Is `r` still valid (its packet checked in and untouched since)?
    #[inline]
    pub fn is_live(&self, r: PacketRef) -> bool {
        self.slots
            .get(r.idx as usize)
            .is_some_and(|s| s.gen == r.gen && s.pkt.is_some())
    }

    /// Packets currently checked in.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most packets ever simultaneously checked in.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Slot reuses: check-ins that re-armed a freed slot plus in-place
    /// forwards ([`PacketPool::rebrand`]). High recycle counts with a low
    /// high-water mark are the steady state the pool exists for.
    #[inline]
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Total check-ins since the pool was created.
    #[inline]
    pub fn checked_in(&self) -> u64 {
        self.checked_in
    }

    /// Allocated slot capacity (live + free).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, PacketKind};
    use crate::time::SimTime;

    fn pkt(uid: u64) -> Packet {
        let mut p = PacketBuilder::new(1, 2, 100, PacketKind::Udp { flow: 1, seq: 0 }).build();
        p.uid = uid;
        p.created = SimTime(1);
        p
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(7));
        assert_eq!(pool.get(r).uid, 7);
        assert_eq!(pool.live(), 1);
        assert!(pool.is_live(r));
        let p = pool.remove(r);
        assert_eq!(p.uid, 7);
        assert_eq!(pool.live(), 0);
        assert!(!pool.is_live(r));
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        pool.remove(a);
        let b = pool.insert(pkt(2));
        assert_eq!(b.index(), a.index(), "freed slot reused");
        assert_ne!(b.generation(), a.generation(), "generation bumped");
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut pool = PacketPool::new();
        let refs: Vec<_> = (1..=5).map(|i| pool.insert(pkt(i))).collect();
        for r in refs {
            pool.remove(r);
        }
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.high_water(), 5);
        assert_eq!(pool.checked_in(), 5);
    }

    #[test]
    fn rebrand_keeps_packet_and_invalidates_old_ref() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(9));
        let r2 = pool.rebrand(r);
        assert!(!pool.is_live(r));
        assert!(pool.is_live(r2));
        assert_eq!(pool.get(r2).uid, 9);
        assert_eq!(pool.live(), 1, "rebrand does not change liveness");
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_ref_get_panics() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(1));
        pool.remove(r);
        let _ = pool.get(r);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn double_free_panics() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(1));
        pool.remove(r);
        pool.remove(r);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn ref_outliving_slot_reuse_panics() {
        let mut pool = PacketPool::new();
        let old = pool.insert(pkt(1));
        pool.remove(old);
        let _new = pool.insert(pkt(2)); // same slot, new generation
        let _ = pool.get(old);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unstamped packet")]
    fn unstamped_packet_is_rejected_at_check_in() {
        let mut pool = PacketPool::new();
        let raw = PacketBuilder::new(1, 2, 100, PacketKind::Udp { flow: 1, seq: 0 }).build();
        pool.insert(raw); // uid 0: the builder footgun, caught here
    }
}
