//! Plain (non-FANcY) switches.
//!
//! [`Fib`] is the destination-based forwarding table shared by all switch
//! implementations in the workspace (plain, FANcY, baselines). [`PlainSwitch`]
//! forwards by FIB with no monitoring; [`Bridge`] transparently patches two
//! ports together — it plays the "link switch" role of the paper's Tofino
//! case study (§6.1), where failures are injected on an intermediate device.

use std::any::Any;
use std::collections::HashMap;

use fancy_net::Prefix;

use crate::event::PortId;
use crate::kernel::Kernel;
use crate::node::Node;
use crate::pool::PacketRef;

/// A destination-prefix forwarding table.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    routes: HashMap<Prefix, PortId>,
    default_port: Option<PortId>,
}

impl Fib {
    /// An empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Route `prefix` out of `port`.
    pub fn route(&mut self, prefix: Prefix, port: PortId) {
        self.routes.insert(prefix, port);
    }

    /// Route everything unmatched out of `port`.
    pub fn default_route(&mut self, port: PortId) {
        self.default_port = Some(port);
    }

    /// Look up the egress port for a destination address.
    pub fn lookup(&self, dst: u32) -> Option<PortId> {
        self.routes
            .get(&Prefix::from_addr(dst))
            .copied()
            .or(self.default_port)
    }

    /// Number of explicit routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if the FIB holds no explicit route.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterate over explicit routes.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &PortId)> {
        self.routes.iter()
    }
}

/// A switch that forwards by FIB and does nothing else.
#[derive(Debug, Default)]
pub struct PlainSwitch {
    /// Forwarding table.
    pub fib: Fib,
    /// Packets that matched no route (dropped).
    pub no_route_drops: u64,
}

impl PlainSwitch {
    /// Build a switch around a FIB.
    pub fn new(fib: Fib) -> Self {
        PlainSwitch {
            fib,
            no_route_drops: 0,
        }
    }
}

impl Node for PlainSwitch {
    fn on_packet(&mut self, ctx: &mut Kernel, _port: PortId, pkt: PacketRef) {
        match self.fib.lookup(ctx.pkt(pkt).dst) {
            Some(out) => {
                ctx.forward(out, pkt);
            }
            None => self.no_route_drops += 1,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A transparent two-port (or N-port pairwise) patch panel: whatever enters
/// port `i` leaves on `pairs[i]`. Gray failures are installed on its links
/// to emulate a faulty intermediate device, as in the paper's Tofino case
/// study.
#[derive(Debug)]
pub struct Bridge {
    /// `pairs[i]` is the egress port for traffic entering port `i`.
    pub pairs: Vec<PortId>,
}

impl Bridge {
    /// A simple two-port bridge (0 ↔ 1).
    pub fn two_port() -> Self {
        Bridge { pairs: vec![1, 0] }
    }

    /// A bridge with explicit port pairing.
    pub fn with_pairs(pairs: Vec<PortId>) -> Self {
        Bridge { pairs }
    }
}

impl Node for Bridge {
    fn on_packet(&mut self, ctx: &mut Kernel, port: PortId, pkt: PacketRef) {
        let out = self.pairs[port];
        ctx.forward(out, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::network::Network;
    use crate::node::SinkNode;
    use crate::packet::{PacketBuilder, PacketKind};
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn fib_lookup_prefers_explicit_route() {
        let mut fib = Fib::new();
        fib.route(Prefix::from_addr(0x0A000000), 3);
        fib.default_route(9);
        assert_eq!(fib.lookup(0x0A0000FF), Some(3));
        assert_eq!(fib.lookup(0x0B000001), Some(9));
        assert_eq!(fib.len(), 1);
        assert!(!fib.is_empty());
    }

    #[test]
    fn fib_without_default_returns_none() {
        let fib = Fib::new();
        assert_eq!(fib.lookup(1), None);
    }

    #[test]
    fn plain_switch_forwards_by_fib() {
        let mut net = Network::new(1);
        let mut fib = Fib::new();
        fib.default_route(1); // port 1 = second connection
        let sw = net.add_node(Box::new(PlainSwitch::new(fib)));
        let a = net.add_node(Box::new(SinkNode::default()));
        let b = net.add_node(Box::new(SinkNode::default()));
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::from_micros(10));
        net.connect(sw, a, cfg); // switch port 0
        net.connect(sw, b, cfg); // switch port 1
        let pkt = PacketBuilder::new(1, 2, 500, PacketKind::Udp { flow: 0, seq: 0 }).build();
        net.kernel.inject(sw, 0, pkt, SimTime::ZERO);
        net.run_to_end();
        assert_eq!(net.node::<SinkNode>(a).packets, 0);
        assert_eq!(net.node::<SinkNode>(b).packets, 1);
    }

    #[test]
    fn switch_drops_unroutable() {
        let mut net = Network::new(1);
        let sw = net.add_node(Box::new(PlainSwitch::new(Fib::new())));
        let a = net.add_node(Box::new(SinkNode::default()));
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::from_micros(10));
        net.connect(sw, a, cfg);
        let pkt = PacketBuilder::new(1, 2, 500, PacketKind::Udp { flow: 0, seq: 0 }).build();
        net.kernel.inject(sw, 0, pkt, SimTime::ZERO);
        net.run_to_end();
        assert_eq!(net.node::<PlainSwitch>(sw).no_route_drops, 1);
    }

    #[test]
    fn bridge_patches_ports() {
        let mut net = Network::new(1);
        let br = net.add_node(Box::new(Bridge::two_port()));
        let a = net.add_node(Box::new(SinkNode::default()));
        let b = net.add_node(Box::new(SinkNode::default()));
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::from_micros(10));
        net.connect(br, a, cfg); // bridge port 0 ↔ a
        net.connect(br, b, cfg); // bridge port 1 ↔ b
        let pkt = PacketBuilder::new(1, 2, 500, PacketKind::Udp { flow: 0, seq: 0 }).build();
        net.kernel.inject(br, 0, pkt, SimTime::ZERO); // enters on port 0 → leaves port 1 → b
        net.run_to_end();
        assert_eq!(net.node::<SinkNode>(b).packets, 1);
        assert_eq!(net.node::<SinkNode>(a).packets, 0);
    }
}
