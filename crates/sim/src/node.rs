//! The node abstraction.
//!
//! Everything attached to the network — hosts, plain switches, FANcY
//! switches, baseline detectors — implements [`Node`]. Callbacks receive
//! `&mut Kernel` as their window on the world (clock, RNG, links, records).

use std::any::Any;

use crate::event::{PortId, TimerToken};
use crate::kernel::Kernel;
use crate::pool::PacketRef;

/// A network element.
pub trait Node {
    /// Called once when the simulation starts, before any event fires.
    /// Kick off timers and initial traffic here.
    fn on_start(&mut self, _ctx: &mut Kernel) {}

    /// A packet arrived at `port` (at the ingress pipeline, i.e. before this
    /// node's own traffic manager). The ref resolves through `ctx`
    /// ([`Kernel::pkt`], [`Kernel::pkt_mut`], [`Kernel::take_packet`]);
    /// forward it with [`Kernel::forward`], or just return — unconsumed
    /// refs are reclaimed by the dispatch loop.
    fn on_packet(&mut self, ctx: &mut Kernel, port: PortId, pkt: PacketRef);

    /// A timer set via [`Kernel::schedule_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Kernel, _token: TimerToken) {}

    /// Downcast support for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Downcast support for post-run inspection (mutable).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A sink node: swallows every packet, counting per-entry arrivals.
///
/// Useful as the far end of a link in unit tests and as a traffic sink in
/// experiments that only care about what reached the destination.
#[derive(Debug, Default)]
pub struct SinkNode {
    /// Total packets received.
    pub packets: u64,
    /// Total bytes received.
    pub bytes: u64,
}

impl Node for SinkNode {
    fn on_packet(&mut self, ctx: &mut Kernel, _port: PortId, pkt: PacketRef) {
        self.packets += 1;
        self.bytes += u64::from(ctx.pkt(pkt).size);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
