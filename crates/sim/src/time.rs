//! Simulated time.
//!
//! All simulation logic runs on a virtual clock with nanosecond resolution.
//! Wall-clock time never appears in simulation code, which keeps experiments
//! bit-reproducible.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to nanoseconds).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1e9).round() as u64)
    }

    /// This duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// An instant on the simulated clock (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// A time that compares greater than every reachable instant.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since of a later instant");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating version of [`Self::duration_since`].
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

/// Time needed to serialize `bytes` onto a link of `bits_per_sec`.
#[inline]
pub fn transmission_time(bytes: usize, bits_per_sec: u64) -> SimDuration {
    debug_assert!(bits_per_sec > 0);
    // ns = bytes*8 / (bits/s) * 1e9, computed in u128 to avoid overflow.
    let ns = (bytes as u128 * 8 * 1_000_000_000) / bits_per_sec as u128;
    SimDuration(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.05),
            SimDuration::from_millis(50)
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(
            t.duration_since(SimTime::ZERO),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(30) / 3,
            SimDuration::from_millis(10)
        );
        assert_eq!(
            SimDuration::from_millis(5).saturating_sub(SimDuration::from_millis(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn transmission_time_examples() {
        // 1500 B on 100 Gbps = 120 ns.
        assert_eq!(
            transmission_time(1500, 100_000_000_000),
            SimDuration::from_nanos(120)
        );
        // 1500 B on 10 Mbps = 1.2 ms.
        assert_eq!(
            transmission_time(1500, 10_000_000),
            SimDuration::from_micros(1200)
        );
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "50.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
        assert_eq!(SimDuration::from_nanos(9).to_string(), "9ns");
    }
}
