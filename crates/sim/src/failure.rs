//! Gray-failure injection.
//!
//! The paper defines a gray failure as "any hardware malfunction that causes
//! non-transient packet loss on a subset of the traffic" and classifies real
//! vendor bugs along two axes (Table 1): which forwarding *entries* are
//! affected (one/some prefixes vs all) and which *packets* per entry are
//! dropped (some vs all). This module models every class in that table:
//!
//! | Table 1 cell | [`FailureMatcher`] |
//! |---|---|
//! | specific IP prefixes, all packets | `Entries` with `drop_prob = 1` |
//! | specific IP prefixes, some packets | `Entries` with `drop_prob < 1` |
//! | packets with specific sizes | `PacketSize` |
//! | packets with IP ID 0xE000 | `IpId` |
//! | packets with wrong CRC / random corruption | `Uniform` |
//! | packets from a specific line card | `SourceRange` (per ingress group) |
//! | traffic on certain ports / interface flaps | `Flap` windows |
//!
//! Failures are attached to links and sampled when a packet is put on the
//! wire — *after* the upstream traffic manager, so congestion drops are
//! never confused with gray drops (matching where FANcY places its
//! counters, §3).

use rand::Rng;

use fancy_net::Prefix;

use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// Which packets a gray failure affects.
#[derive(Debug, Clone)]
pub enum FailureMatcher {
    /// Packets whose destination entry is in the given set.
    Entries(Vec<Prefix>),
    /// Every packet (e.g. random CRC corruption on a link).
    Uniform,
    /// Packets whose total size falls in `[min, max]` bytes
    /// (Cisco CSCtc33158: "drops random sized packets").
    PacketSize {
        /// Minimum matching size, inclusive.
        min: u32,
        /// Maximum matching size, inclusive.
        max: u32,
    },
    /// Packets with a specific IPv4 identification value
    /// (Cisco CSCuv31196: drops with IP ID 0xE000).
    IpId(u16),
    /// Packets from a contiguous source-address range, standing in for
    /// "packets sent from a specific line card" (Cisco CSCea91692).
    SourceRange {
        /// Lowest matching source address, inclusive.
        lo: u32,
        /// Highest matching source address, inclusive.
        hi: u32,
    },
    /// Interface flaps: the link drops *everything* during periodic windows
    /// (Juniper PR1441816/PR1459698-style blackhole episodes).
    Flap {
        /// Length of each blackhole episode.
        on: SimDuration,
        /// Gap between episodes.
        off: SimDuration,
    },
}

impl FailureMatcher {
    /// Does the matcher select this packet at time `now`?
    pub fn matches(&self, pkt: &Packet, now: SimTime) -> bool {
        match self {
            FailureMatcher::Entries(set) => set.contains(&pkt.entry()),
            FailureMatcher::Uniform => true,
            FailureMatcher::PacketSize { min, max } => pkt.size >= *min && pkt.size <= *max,
            FailureMatcher::IpId(id) => pkt.ip_id == *id,
            FailureMatcher::SourceRange { lo, hi } => pkt.src >= *lo && pkt.src <= *hi,
            FailureMatcher::Flap { on, off } => {
                let period = on.as_nanos() + off.as_nanos();
                if period == 0 {
                    return false;
                }
                now.as_nanos() % period < on.as_nanos()
            }
        }
    }
}

/// A gray failure installed on a link.
#[derive(Debug, Clone)]
pub struct GrayFailure {
    /// Which packets are candidates for dropping.
    pub matcher: FailureMatcher,
    /// Probability that a matching packet is dropped (1.0 = blackhole).
    pub drop_prob: f64,
    /// Failure activation time.
    pub start: SimTime,
    /// Failure end (`SimTime::FAR_FUTURE` for permanent failures).
    pub end: SimTime,
}

impl GrayFailure {
    /// A permanent failure starting at `start`.
    pub fn new(matcher: FailureMatcher, drop_prob: f64, start: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob must be in [0,1]");
        GrayFailure {
            matcher,
            drop_prob,
            start,
            end: SimTime::FAR_FUTURE,
        }
    }

    /// A permanent single-entry failure — the §5.1 workhorse.
    pub fn single_entry(entry: Prefix, drop_prob: f64, start: SimTime) -> Self {
        GrayFailure::new(FailureMatcher::Entries(vec![entry]), drop_prob, start)
    }

    /// A permanent multi-entry failure (§5.1.2's 100-entry scenarios).
    pub fn multi_entry(entries: Vec<Prefix>, drop_prob: f64, start: SimTime) -> Self {
        GrayFailure::new(FailureMatcher::Entries(entries), drop_prob, start)
    }

    /// A uniform random-loss failure over the whole link (§5.1.3).
    pub fn uniform(drop_prob: f64, start: SimTime) -> Self {
        GrayFailure::new(FailureMatcher::Uniform, drop_prob, start)
    }

    /// Is the failure active at `now`?
    #[inline]
    pub fn active(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }

    /// Should this packet be dropped? Samples the drop probability.
    pub fn drops(&self, pkt: &Packet, now: SimTime, rng: &mut impl Rng) -> bool {
        if !self.active(now) || !self.matcher.matches(pkt, now) {
            return false;
        }
        self.drop_prob >= 1.0 || rng.gen_bool(self.drop_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, PacketKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pkt(dst: u32, size: u32, ip_id: u16) -> Packet {
        PacketBuilder::new(0x01000001, dst, size, PacketKind::Udp { flow: 0, seq: 0 })
            .ip_id(ip_id)
            .build()
    }

    #[test]
    fn entry_failure_matches_only_listed_prefixes() {
        let target = Prefix::from_addr(0x0A000100);
        let f = GrayFailure::single_entry(target, 1.0, SimTime::ZERO);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(f.drops(&pkt(0x0A000105, 1500, 0), SimTime::ZERO, &mut rng));
        assert!(!f.drops(&pkt(0x0A000205, 1500, 0), SimTime::ZERO, &mut rng));
    }

    #[test]
    fn failure_respects_start_time() {
        let f = GrayFailure::uniform(1.0, SimTime(5_000));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!f.drops(&pkt(1, 100, 0), SimTime(4_999), &mut rng));
        assert!(f.drops(&pkt(1, 100, 0), SimTime(5_000), &mut rng));
    }

    #[test]
    fn probabilistic_drop_rate_is_close() {
        let f = GrayFailure::uniform(0.1, SimTime::ZERO);
        let mut rng = SmallRng::seed_from_u64(42);
        let p = pkt(1, 100, 0);
        let drops = (0..100_000)
            .filter(|_| f.drops(&p, SimTime::ZERO, &mut rng))
            .count();
        let rate = drops as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn size_and_ipid_matchers() {
        let by_size = GrayFailure::new(
            FailureMatcher::PacketSize { min: 64, max: 128 },
            1.0,
            SimTime::ZERO,
        );
        let by_id = GrayFailure::new(FailureMatcher::IpId(0xE000), 1.0, SimTime::ZERO);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(by_size.drops(&pkt(1, 100, 0), SimTime::ZERO, &mut rng));
        assert!(!by_size.drops(&pkt(1, 1500, 0), SimTime::ZERO, &mut rng));
        assert!(by_id.drops(&pkt(1, 100, 0xE000), SimTime::ZERO, &mut rng));
        assert!(!by_id.drops(&pkt(1, 100, 0xE001), SimTime::ZERO, &mut rng));
    }

    #[test]
    fn flap_alternates_with_time() {
        let f = GrayFailure::new(
            FailureMatcher::Flap {
                on: SimDuration::from_millis(10),
                off: SimDuration::from_millis(90),
            },
            1.0,
            SimTime::ZERO,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let p = pkt(1, 100, 0);
        assert!(f.drops(&p, SimTime(5_000_000), &mut rng)); // inside on-window
        assert!(!f.drops(&p, SimTime(50_000_000), &mut rng)); // inside off-window
        assert!(f.drops(&p, SimTime(105_000_000), &mut rng)); // next period
    }

    #[test]
    fn source_range_models_line_card() {
        let f = GrayFailure::new(
            FailureMatcher::SourceRange {
                lo: 0x01000000,
                hi: 0x01FFFFFF,
            },
            1.0,
            SimTime::ZERO,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let mut inside = pkt(9, 100, 0);
        inside.src = 0x01ABCDEF;
        let mut outside = pkt(9, 100, 0);
        outside.src = 0x02000000;
        assert!(f.drops(&inside, SimTime::ZERO, &mut rng));
        assert!(!f.drops(&outside, SimTime::ZERO, &mut rng));
    }
}
