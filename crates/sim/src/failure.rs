//! Gray-failure injection.
//!
//! The paper defines a gray failure as "any hardware malfunction that causes
//! non-transient packet loss on a subset of the traffic" and classifies real
//! vendor bugs along two axes (Table 1): which forwarding *entries* are
//! affected (one/some prefixes vs all) and which *packets* per entry are
//! dropped (some vs all). This module models every class in that table:
//!
//! | Table 1 cell | [`FailureMatcher`] |
//! |---|---|
//! | specific IP prefixes, all packets | `Entries` with `drop_prob = 1` |
//! | specific IP prefixes, some packets | `Entries` with `drop_prob < 1` |
//! | packets with specific sizes | `PacketSize` |
//! | packets with IP ID 0xE000 | `IpId` |
//! | packets with wrong CRC / random corruption | `Uniform` |
//! | packets from a specific line card | `SourceRange` (per ingress group) |
//! | traffic on certain ports / interface flaps | `Flap` windows |
//!
//! Failures are attached to links and sampled when a packet is put on the
//! wire — *after* the upstream traffic manager, so congestion drops are
//! never confused with gray drops (matching where FANcY places its
//! counters, §3).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fancy_net::{ControlKind, Prefix};

use crate::packet::{Packet, PacketKind};
use crate::time::{SimDuration, SimTime};

/// Which packets a gray failure affects.
#[derive(Debug, Clone)]
pub enum FailureMatcher {
    /// Packets whose destination entry is in the given set.
    Entries(Vec<Prefix>),
    /// Every packet (e.g. random CRC corruption on a link).
    Uniform,
    /// Packets whose total size falls in `[min, max]` bytes
    /// (Cisco CSCtc33158: "drops random sized packets").
    PacketSize {
        /// Minimum matching size, inclusive.
        min: u32,
        /// Maximum matching size, inclusive.
        max: u32,
    },
    /// Packets with a specific IPv4 identification value
    /// (Cisco CSCuv31196: drops with IP ID 0xE000).
    IpId(u16),
    /// Packets from a contiguous source-address range, standing in for
    /// "packets sent from a specific line card" (Cisco CSCea91692).
    SourceRange {
        /// Lowest matching source address, inclusive.
        lo: u32,
        /// Highest matching source address, inclusive.
        hi: u32,
    },
    /// Interface flaps: the link drops *everything* during periodic windows
    /// (Juniper PR1441816/PR1459698-style blackhole episodes).
    Flap {
        /// Length of each blackhole episode.
        on: SimDuration,
        /// Gap between episodes.
        off: SimDuration,
    },
}

impl FailureMatcher {
    /// Does the matcher select this packet at time `now`? `start` is the
    /// owning failure's activation time: flap windows are phased relative
    /// to it, so a flap installed at t = 5 s starts its first on-window
    /// there instead of being phase-locked to t = 0.
    pub fn matches(&self, pkt: &Packet, now: SimTime, start: SimTime) -> bool {
        match self {
            FailureMatcher::Entries(set) => set.contains(&pkt.entry()),
            FailureMatcher::Uniform => true,
            FailureMatcher::PacketSize { min, max } => pkt.size >= *min && pkt.size <= *max,
            FailureMatcher::IpId(id) => pkt.ip_id == *id,
            FailureMatcher::SourceRange { lo, hi } => pkt.src >= *lo && pkt.src <= *hi,
            FailureMatcher::Flap { on, off } => {
                let period = on.as_nanos() + off.as_nanos();
                if period == 0 {
                    return false;
                }
                now.saturating_since(start).as_nanos() % period < on.as_nanos()
            }
        }
    }
}

/// A gray failure installed on a link.
#[derive(Debug, Clone)]
pub struct GrayFailure {
    /// Which packets are candidates for dropping.
    pub matcher: FailureMatcher,
    /// Probability that a matching packet is dropped (1.0 = blackhole).
    pub drop_prob: f64,
    /// Failure activation time.
    pub start: SimTime,
    /// Failure end (`SimTime::FAR_FUTURE` for permanent failures).
    pub end: SimTime,
}

impl GrayFailure {
    /// A permanent failure starting at `start`.
    pub fn new(matcher: FailureMatcher, drop_prob: f64, start: SimTime) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "drop_prob must be in [0,1]"
        );
        GrayFailure {
            matcher,
            drop_prob,
            start,
            end: SimTime::FAR_FUTURE,
        }
    }

    /// A permanent single-entry failure — the §5.1 workhorse.
    pub fn single_entry(entry: Prefix, drop_prob: f64, start: SimTime) -> Self {
        GrayFailure::new(FailureMatcher::Entries(vec![entry]), drop_prob, start)
    }

    /// A permanent multi-entry failure (§5.1.2's 100-entry scenarios).
    pub fn multi_entry(entries: Vec<Prefix>, drop_prob: f64, start: SimTime) -> Self {
        GrayFailure::new(FailureMatcher::Entries(entries), drop_prob, start)
    }

    /// A uniform random-loss failure over the whole link (§5.1.3).
    pub fn uniform(drop_prob: f64, start: SimTime) -> Self {
        GrayFailure::new(FailureMatcher::Uniform, drop_prob, start)
    }

    /// Is the failure active at `now`?
    #[inline]
    pub fn active(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }

    /// Should this packet be dropped? Samples the drop probability.
    pub fn drops(&self, pkt: &Packet, now: SimTime, rng: &mut impl Rng) -> bool {
        if !self.active(now) || !self.matcher.matches(pkt, now, self.start) {
            return false;
        }
        self.drop_prob >= 1.0 || rng.gen_bool(self.drop_prob)
    }
}

// ---------------------------------------------------------------------
// Adversarial fault models (the chaos layer).
//
// `GrayFailure` above models the *paper's* Table 1 classes: static,
// memoryless, drop-only. Real gray failures are nastier — SprayCheck
// observes bursty, time-correlated loss, and a robust reproduction must
// also survive faults aimed at the detector's own control plane. A
// `FaultPlan` composes such adversarial behaviors on a link direction:
// Gilbert–Elliott bursty loss, seeded-random flap schedules, packet
// duplication and reordering on the wire, and a control-plane target
// that picks out `PacketKind::FancyControl` messages specifically.
//
// Every plan carries its *own* seeded RNG, so its decisions depend only
// on (seed, packet sequence) — never on how much randomness background
// traffic consumed from the kernel RNG. Identical plan + seed ⇒
// bit-identical verdicts at any worker-thread count.
// ---------------------------------------------------------------------

/// Which packets a [`FaultStage`] targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every packet put on the wire.
    All,
    /// Data packets only (everything that is not control traffic).
    Data,
    /// FANcY/NetSeer control traffic. `None` targets every control
    /// message; `Some(kinds)` only the listed bodies (e.g. drop every
    /// `Report` but let `Start`/`StartAck` through).
    Control(Option<Vec<ControlKind>>),
}

impl FaultTarget {
    /// Does this stage consider `pkt` at all?
    pub fn matches(&self, pkt: &Packet) -> bool {
        match self {
            FaultTarget::All => true,
            FaultTarget::Data => !pkt.is_control(),
            FaultTarget::Control(kinds) => match &pkt.kind {
                PacketKind::FancyControl(msg) => kinds
                    .as_ref()
                    .is_none_or(|ks| ks.contains(&msg.body.kind())),
                PacketKind::NetSeerNack { .. } => kinds.is_none(),
                _ => false,
            },
        }
    }
}

/// The loss process a [`FaultStage`] runs over its matched packets.
#[derive(Debug, Clone, PartialEq)]
pub enum LossProcess {
    /// No loss from this stage (duplication/reordering only).
    None,
    /// Memoryless loss with the given probability.
    Bernoulli(f64),
    /// Gilbert–Elliott bursty loss: a two-state Markov chain advanced
    /// once per matched packet. In the Good state packets drop with
    /// `loss_good` (usually 0), in the Bad state with `loss_bad`
    /// (usually near 1). `p_enter_bad` / `p_exit_bad` are the per-packet
    /// transition probabilities; the mean burst length is
    /// `1 / p_exit_bad` packets.
    GilbertElliott {
        /// Good → Bad transition probability per matched packet.
        p_enter_bad: f64,
        /// Bad → Good transition probability per matched packet.
        p_exit_bad: f64,
        /// Drop probability while Good.
        loss_good: f64,
        /// Drop probability while Bad.
        loss_bad: f64,
    },
    /// Seeded-random interface flaps: the stage alternates between
    /// off-windows (no loss) and on-windows (total blackhole), each
    /// window's length drawn uniformly from its `[min, max]` range.
    /// Unlike [`FailureMatcher::Flap`], no two episodes are alike.
    RandomFlap {
        /// Blackhole episode length range `[min, max]`.
        on: (SimDuration, SimDuration),
        /// Quiet gap length range `[min, max]`.
        off: (SimDuration, SimDuration),
    },
}

/// Blackhole-window state of a [`LossProcess::RandomFlap`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct FlapState {
    /// Are we inside an on (blackhole) window?
    dropping: bool,
    /// When the current window ends.
    until: SimTime,
}

/// One composable fault behavior inside a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStage {
    /// Which packets this stage acts on.
    pub target: FaultTarget,
    /// The stage's loss process.
    pub loss: LossProcess,
    /// Probability that a surviving matched packet is duplicated on the
    /// wire (the copy arrives back-to-back with the original).
    pub dup_prob: f64,
    /// Probability that a surviving matched packet is held back by an
    /// extra delay drawn from `reorder_delay` — later traffic overtakes
    /// it, i.e. reordering.
    pub reorder_prob: f64,
    /// Extra-delay range `[min, max]` for reordered packets.
    pub reorder_delay: (SimDuration, SimDuration),
    /// Stage activation time.
    pub start: SimTime,
    /// Stage end (`SimTime::FAR_FUTURE` for permanent stages).
    pub end: SimTime,
    /// Gilbert–Elliott chain state: currently Bad?
    ge_bad: bool,
    /// Random-flap window state, created lazily at activation.
    flap: Option<FlapState>,
}

impl FaultStage {
    /// A stage over `target` with no loss, duplication or reordering;
    /// compose behaviors with the builder methods.
    pub fn new(target: FaultTarget) -> Self {
        FaultStage {
            target,
            loss: LossProcess::None,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: (SimDuration::from_nanos(0), SimDuration::from_nanos(0)),
            start: SimTime::ZERO,
            end: SimTime::FAR_FUTURE,
            ge_bad: false,
            flap: None,
        }
    }

    /// Memoryless loss with probability `p`.
    pub fn bernoulli(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.loss = LossProcess::Bernoulli(p);
        self
    }

    /// Gilbert–Elliott bursty loss (see [`LossProcess::GilbertElliott`]).
    pub fn gilbert_elliott(
        mut self,
        p_enter_bad: f64,
        p_exit_bad: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        for p in [p_enter_bad, p_exit_bad, loss_good, loss_bad] {
            assert!(
                (0.0..=1.0).contains(&p),
                "GE probabilities must be in [0,1]"
            );
        }
        self.loss = LossProcess::GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good,
            loss_bad,
        };
        self
    }

    /// Seeded-random flap schedule (see [`LossProcess::RandomFlap`]).
    pub fn random_flap(
        mut self,
        on: (SimDuration, SimDuration),
        off: (SimDuration, SimDuration),
    ) -> Self {
        assert!(
            on.0 <= on.1 && off.0 <= off.1,
            "flap ranges must be min <= max"
        );
        assert!(on.1.as_nanos() > 0, "on-window max must be positive");
        self.loss = LossProcess::RandomFlap { on, off };
        self
    }

    /// Duplicate surviving matched packets with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "dup probability must be in [0,1]");
        self.dup_prob = p;
        self
    }

    /// Reorder surviving matched packets with probability `p`, holding
    /// them back by an extra delay uniform in `[min, max]`.
    pub fn reorder(mut self, p: f64, min: SimDuration, max: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "reorder probability must be in [0,1]"
        );
        assert!(min <= max, "reorder delay range must be min <= max");
        self.reorder_prob = p;
        self.reorder_delay = (min, max);
        self
    }

    /// Restrict the stage to the window `[start, end)`.
    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.start = start;
        self.end = end;
        self
    }

    /// Activate the stage at `start` (permanent).
    pub fn starting(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    fn active(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }

    /// Advance the loss process for one matched packet and decide a drop.
    fn drops(&mut self, now: SimTime, rng: &mut SmallRng) -> bool {
        match &self.loss {
            LossProcess::None => false,
            LossProcess::Bernoulli(p) => *p >= 1.0 || rng.gen_bool(*p),
            LossProcess::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                let flip = if self.ge_bad {
                    *p_exit_bad
                } else {
                    *p_enter_bad
                };
                let (flip, loss_good, loss_bad) = (flip, *loss_good, *loss_bad);
                if rng.gen_bool(flip) {
                    self.ge_bad = !self.ge_bad;
                }
                let p = if self.ge_bad { loss_bad } else { loss_good };
                p >= 1.0 || (p > 0.0 && rng.gen_bool(p))
            }
            LossProcess::RandomFlap { on, off } => {
                let (on, off) = (*on, *off);
                // First matched packet since activation: start with a
                // quiet gap so the schedule is not trivially a blackhole
                // at t = start.
                if self.flap.is_none() {
                    let gap = sample_duration(rng, off);
                    self.flap = Some(FlapState {
                        dropping: false,
                        until: self.start + gap,
                    });
                }
                let st = self.flap.as_mut().expect("initialized above");
                while st.until <= now {
                    st.dropping = !st.dropping;
                    let span = if st.dropping {
                        sample_duration(rng, on)
                    } else {
                        sample_duration(rng, off)
                    };
                    st.until += span;
                }
                st.dropping
            }
        }
    }
}

/// Uniform duration in `[min, max]` (inclusive); no RNG draw when the
/// range is a point, so fixed-delay stages stay hand-countable.
fn sample_duration(rng: &mut SmallRng, range: (SimDuration, SimDuration)) -> SimDuration {
    let (lo, hi) = (range.0.as_nanos(), range.1.as_nanos());
    if hi <= lo {
        return range.0;
    }
    SimDuration::from_nanos(lo + rng.gen_range(0..=(hi - lo)))
}

/// The chaos layer's decision for one wire packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultVerdict {
    /// Drop the packet on the wire.
    pub drop: bool,
    /// Schedule a duplicate arrival alongside the original.
    pub duplicate: bool,
    /// Hold the packet back by this extra delay (reordering).
    pub extra_delay: Option<SimDuration>,
}

impl FaultVerdict {
    /// Did the chaos layer touch this packet at all?
    pub fn acted(&self) -> bool {
        self.drop || self.duplicate || self.extra_delay.is_some()
    }
}

/// A composable, seeded adversarial fault model for one link direction.
///
/// Stages are evaluated in insertion order per packet; the first stage
/// that decides a drop wins, and duplication/reordering compose across
/// stages (first reorder delay wins). All randomness comes from the
/// plan's own RNG, so verdicts are a pure function of (seed, packet
/// sequence) — the sweep engine's bit-identical guarantee extends to
/// chaos runs unchanged.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    stages: Vec<FaultStage>,
    rng: SmallRng,
    /// The seed the plan was built with (reports, reproduction).
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan drawing randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            stages: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Append a stage (builder style).
    pub fn stage(mut self, stage: FaultStage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Convenience: a plan that drops control traffic (all of it, or only
    /// the listed kinds) with probability `p` — the §4.1 robustness
    /// scenario where FANcY's own messages traverse the failed link.
    pub fn control_loss(seed: u64, kinds: Option<Vec<ControlKind>>, p: f64) -> Self {
        FaultPlan::new(seed).stage(FaultStage::new(FaultTarget::Control(kinds)).bernoulli(p))
    }

    /// Convenience: a Gilbert–Elliott bursty-loss plan over data packets.
    pub fn bursty_loss(seed: u64, p_enter_bad: f64, p_exit_bad: f64, loss_bad: f64) -> Self {
        FaultPlan::new(seed).stage(FaultStage::new(FaultTarget::Data).gilbert_elliott(
            p_enter_bad,
            p_exit_bad,
            0.0,
            loss_bad,
        ))
    }

    /// The plan's stages (inspection, reports).
    pub fn stages(&self) -> &[FaultStage] {
        &self.stages
    }

    /// Evaluate every stage against one wire packet at its departure
    /// time, advancing stage state. Called by the kernel once per packet
    /// put on the wire of the direction this plan is installed on.
    pub fn apply(&mut self, pkt: &Packet, now: SimTime) -> FaultVerdict {
        let mut verdict = FaultVerdict::default();
        for stage in &mut self.stages {
            if !stage.active(now) || !stage.target.matches(pkt) {
                continue;
            }
            if stage.drops(now, &mut self.rng) {
                verdict.drop = true;
                return verdict;
            }
            if stage.dup_prob > 0.0 && self.rng.gen_bool(stage.dup_prob) {
                verdict.duplicate = true;
            }
            if verdict.extra_delay.is_none()
                && stage.reorder_prob > 0.0
                && self.rng.gen_bool(stage.reorder_prob)
            {
                verdict.extra_delay = Some(sample_duration(&mut self.rng, stage.reorder_delay));
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, PacketKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pkt(dst: u32, size: u32, ip_id: u16) -> Packet {
        PacketBuilder::new(0x01000001, dst, size, PacketKind::Udp { flow: 0, seq: 0 })
            .ip_id(ip_id)
            .build()
    }

    #[test]
    fn entry_failure_matches_only_listed_prefixes() {
        let target = Prefix::from_addr(0x0A000100);
        let f = GrayFailure::single_entry(target, 1.0, SimTime::ZERO);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(f.drops(&pkt(0x0A000105, 1500, 0), SimTime::ZERO, &mut rng));
        assert!(!f.drops(&pkt(0x0A000205, 1500, 0), SimTime::ZERO, &mut rng));
    }

    #[test]
    fn failure_respects_start_time() {
        let f = GrayFailure::uniform(1.0, SimTime(5_000));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!f.drops(&pkt(1, 100, 0), SimTime(4_999), &mut rng));
        assert!(f.drops(&pkt(1, 100, 0), SimTime(5_000), &mut rng));
    }

    #[test]
    fn probabilistic_drop_rate_is_close() {
        let f = GrayFailure::uniform(0.1, SimTime::ZERO);
        let mut rng = SmallRng::seed_from_u64(42);
        let p = pkt(1, 100, 0);
        let drops = (0..100_000)
            .filter(|_| f.drops(&p, SimTime::ZERO, &mut rng))
            .count();
        let rate = drops as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn size_and_ipid_matchers() {
        let by_size = GrayFailure::new(
            FailureMatcher::PacketSize { min: 64, max: 128 },
            1.0,
            SimTime::ZERO,
        );
        let by_id = GrayFailure::new(FailureMatcher::IpId(0xE000), 1.0, SimTime::ZERO);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(by_size.drops(&pkt(1, 100, 0), SimTime::ZERO, &mut rng));
        assert!(!by_size.drops(&pkt(1, 1500, 0), SimTime::ZERO, &mut rng));
        assert!(by_id.drops(&pkt(1, 100, 0xE000), SimTime::ZERO, &mut rng));
        assert!(!by_id.drops(&pkt(1, 100, 0xE001), SimTime::ZERO, &mut rng));
    }

    #[test]
    fn flap_alternates_with_time() {
        let f = GrayFailure::new(
            FailureMatcher::Flap {
                on: SimDuration::from_millis(10),
                off: SimDuration::from_millis(90),
            },
            1.0,
            SimTime::ZERO,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let p = pkt(1, 100, 0);
        assert!(f.drops(&p, SimTime(5_000_000), &mut rng)); // inside on-window
        assert!(!f.drops(&p, SimTime(50_000_000), &mut rng)); // inside off-window
        assert!(f.drops(&p, SimTime(105_000_000), &mut rng)); // next period
    }

    #[test]
    fn source_range_models_line_card() {
        let f = GrayFailure::new(
            FailureMatcher::SourceRange {
                lo: 0x01000000,
                hi: 0x01FFFFFF,
            },
            1.0,
            SimTime::ZERO,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let mut inside = pkt(9, 100, 0);
        inside.src = 0x01ABCDEF;
        let mut outside = pkt(9, 100, 0);
        outside.src = 0x02000000;
        assert!(f.drops(&inside, SimTime::ZERO, &mut rng));
        assert!(!f.drops(&outside, SimTime::ZERO, &mut rng));
    }

    #[test]
    fn flap_phase_is_relative_to_start() {
        // The satellite bug: a flap installed at t=5s must open its first
        // on-window at t=5s, not stay phase-locked to the t=0 grid.
        let start = SimTime(5_000_000_000);
        let f = GrayFailure::new(
            FailureMatcher::Flap {
                on: SimDuration::from_millis(10),
                off: SimDuration::from_millis(90),
            },
            1.0,
            start,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let p = pkt(1, 100, 0);
        // 5ms into the window after start: inside the first on-window.
        assert!(f.drops(&p, start + SimDuration::from_millis(5), &mut rng));
        // 50ms after start: off-window, even though (now % period) < on.
        assert!(!f.drops(&p, start + SimDuration::from_millis(50), &mut rng));
        // Next period after start.
        assert!(f.drops(&p, start + SimDuration::from_millis(105), &mut rng));
    }

    // --- chaos layer -------------------------------------------------

    fn control_pkt(body: ControlBody) -> Packet {
        PacketBuilder::new(
            1,
            2,
            64,
            PacketKind::FancyControl(fancy_net::ControlMessage {
                kind: fancy_net::SessionKind::Tree,
                session_id: 7,
                body,
            }),
        )
        .build()
    }

    use fancy_net::ControlBody;

    #[test]
    fn fault_target_selects_packet_classes() {
        let data = pkt(1, 100, 0);
        let start = control_pkt(ControlBody::Start);
        let report = control_pkt(ControlBody::Report(vec![1, 2, 3]));

        assert!(FaultTarget::All.matches(&data));
        assert!(FaultTarget::All.matches(&start));
        assert!(FaultTarget::Data.matches(&data));
        assert!(!FaultTarget::Data.matches(&start));
        assert!(FaultTarget::Control(None).matches(&start));
        assert!(!FaultTarget::Control(None).matches(&data));
        let only_reports = FaultTarget::Control(Some(vec![ControlKind::Report]));
        assert!(only_reports.matches(&report));
        assert!(!only_reports.matches(&start));
    }

    #[test]
    fn bernoulli_one_drops_everything_and_zero_nothing() {
        let mut plan = FaultPlan::new(3).stage(FaultStage::new(FaultTarget::All).bernoulli(1.0));
        let p = pkt(1, 100, 0);
        for i in 0..64 {
            assert!(plan.apply(&p, SimTime(i)).drop);
        }
        let mut quiet = FaultPlan::new(3).stage(FaultStage::new(FaultTarget::All).bernoulli(0.0));
        for i in 0..64 {
            assert!(!quiet.apply(&p, SimTime(i)).acted());
        }
    }

    #[test]
    fn gilbert_elliott_loss_is_bursty() {
        // Mean burst length 1/p_exit = 20 packets; with memoryless loss at
        // the same average rate, runs of consecutive drops would be short.
        let mut plan = FaultPlan::bursty_loss(99, 0.01, 0.05, 1.0);
        let p = pkt(1, 100, 0);
        let outcomes: Vec<bool> = (0..20_000)
            .map(|i| plan.apply(&p, SimTime(i)).drop)
            .collect();
        let total = outcomes.iter().filter(|&&d| d).count();
        // Stationary loss rate = p_enter/(p_enter+p_exit) = 1/6 ≈ 0.167.
        let rate = total as f64 / outcomes.len() as f64;
        assert!((0.08..=0.30).contains(&rate), "loss rate {rate}");
        // Longest drop run must be far beyond anything Bernoulli produces.
        let mut longest = 0usize;
        let mut run = 0usize;
        for d in &outcomes {
            run = if *d { run + 1 } else { 0 };
            longest = longest.max(run);
        }
        assert!(longest >= 10, "longest burst only {longest} packets");
    }

    #[test]
    fn fault_plan_is_seed_deterministic() {
        let build = || {
            FaultPlan::new(0xC0FFEE).stage(
                FaultStage::new(FaultTarget::All)
                    .gilbert_elliott(0.05, 0.2, 0.01, 0.9)
                    .duplicate(0.1)
                    .reorder(
                        0.1,
                        SimDuration::from_micros(1),
                        SimDuration::from_micros(50),
                    ),
            )
        };
        let (mut a, mut b) = (build(), build());
        let p = pkt(1, 100, 0);
        for i in 0..5_000 {
            assert_eq!(a.apply(&p, SimTime(i)), b.apply(&p, SimTime(i)));
        }
        // A different seed diverges somewhere.
        let mut c = FaultPlan::new(0xBEEF).stage(
            FaultStage::new(FaultTarget::All)
                .gilbert_elliott(0.05, 0.2, 0.01, 0.9)
                .duplicate(0.1)
                .reorder(
                    0.1,
                    SimDuration::from_micros(1),
                    SimDuration::from_micros(50),
                ),
        );
        let mut d = build();
        let diverged = (0..5_000).any(|i| c.apply(&p, SimTime(i)) != d.apply(&p, SimTime(i)));
        assert!(diverged);
    }

    #[test]
    fn random_flap_starts_quiet_and_alternates() {
        // Fixed-length windows (min == max) make the schedule exact:
        // off 10ms, on 5ms, off 10ms, on 5ms, ... from the stage start.
        let on = (SimDuration::from_millis(5), SimDuration::from_millis(5));
        let off = (SimDuration::from_millis(10), SimDuration::from_millis(10));
        let start = SimTime(2_000_000_000);
        let mut plan = FaultPlan::new(1).stage(
            FaultStage::new(FaultTarget::All)
                .random_flap(on, off)
                .starting(start),
        );
        let p = pkt(1, 100, 0);
        let at = |ms: u64| start + SimDuration::from_millis(ms);
        assert!(!plan.apply(&p, at(1)).drop); // first off-gap
        assert!(plan.apply(&p, at(12)).drop); // first on-window
        assert!(!plan.apply(&p, at(16)).drop); // second off-gap
        assert!(plan.apply(&p, at(27)).drop); // second on-window
    }

    #[test]
    fn control_loss_plan_spares_data() {
        let mut plan = FaultPlan::control_loss(5, None, 1.0);
        assert!(
            plan.apply(&control_pkt(ControlBody::Start), SimTime(1))
                .drop
        );
        assert!(!plan.apply(&pkt(1, 100, 0), SimTime(2)).acted());
    }

    #[test]
    fn duplication_and_reordering_verdicts() {
        let mut plan =
            FaultPlan::new(9).stage(FaultStage::new(FaultTarget::All).duplicate(1.0).reorder(
                1.0,
                SimDuration::from_micros(3),
                SimDuration::from_micros(3),
            ));
        let v = plan.apply(&pkt(1, 100, 0), SimTime(1));
        assert!(!v.drop);
        assert!(v.duplicate);
        assert_eq!(v.extra_delay, Some(SimDuration::from_micros(3)));
    }

    #[test]
    fn stage_window_bounds_activity() {
        let mut plan = FaultPlan::new(4).stage(
            FaultStage::new(FaultTarget::All)
                .bernoulli(1.0)
                .window(SimTime(100), SimTime(200)),
        );
        let p = pkt(1, 100, 0);
        assert!(!plan.apply(&p, SimTime(99)).drop);
        assert!(plan.apply(&p, SimTime(100)).drop);
        assert!(plan.apply(&p, SimTime(199)).drop);
        assert!(!plan.apply(&p, SimTime(200)).drop);
    }

    #[test]
    fn first_dropping_stage_wins() {
        // Stage 1 drops only Reports; stage 2 drops everything. A Report
        // must be attributed before stage 2 ever sees it, and data packets
        // fall through to stage 2.
        let mut plan = FaultPlan::new(8)
            .stage(
                FaultStage::new(FaultTarget::Control(Some(vec![ControlKind::Report])))
                    .bernoulli(1.0),
            )
            .stage(FaultStage::new(FaultTarget::All).bernoulli(1.0));
        assert!(
            plan.apply(&control_pkt(ControlBody::Report(vec![])), SimTime(1))
                .drop
        );
        assert!(plan.apply(&pkt(1, 100, 0), SimTime(2)).drop);
        assert_eq!(plan.stages().len(), 2);
    }
}
