//! # fancy-sim — a deterministic packet-level network simulator
//!
//! This crate is the ns-3 substitute used to evaluate the FANcY
//! gray-failure detection system (SIGCOMM 2022). It provides:
//!
//! * a deterministic discrete-event kernel ([`network::Network`],
//!   [`kernel::Kernel`]) with nanosecond virtual time,
//! * full-duplex links with serialization, propagation delay and a
//!   traffic-manager queue model ([`link`]) that keeps congestion drops
//!   strictly separate from gray-failure drops — mirroring where FANcY
//!   places its counters (after the upstream TM, before the downstream one),
//! * a gray-failure injection engine ([`failure`]) covering every failure
//!   class of the paper's Table 1,
//! * the [`node::Node`] trait that hosts, switches and detectors implement,
//! * ground-truth and detection records ([`record`]) that experiments
//!   compute TPR / detection-time metrics from.
//!
//! The simulator is synchronous and single-threaded per run: simulation is
//! CPU-bound, so an async runtime would add overhead without benefit (the
//! experiment harness parallelizes across *runs* instead). Runs are
//! bit-reproducible: all randomness flows from the seed given to
//! [`network::Network::new`], and event ties break by insertion order.
//!
//! ## Example
//!
//! ```
//! use fancy_sim::prelude::*;
//!
//! let mut net = Network::new(42);
//! let sink_id = net.add_node(Box::new(SinkNode::default()));
//! let switch_id = net.add_node(Box::new(PlainSwitch::new({
//!     let mut fib = Fib::new();
//!     fib.default_route(0);
//!     fib
//! })));
//! let link = net.connect(switch_id, sink_id, LinkConfig::default());
//!
//! // A 1 % gray failure on the switch→sink direction, active from t = 0.
//! net.kernel.add_failure(
//!     link,
//!     switch_id,
//!     GrayFailure::uniform(0.01, SimTime::ZERO),
//! );
//!
//! let pkt = PacketBuilder::new(1, 0x0A000001, 1500, PacketKind::Udp { flow: 0, seq: 0 }).build();
//! net.kernel.inject(switch_id, 0, pkt, SimTime::ZERO);
//! net.run_to_end();
//! assert_eq!(
//!     net.node::<SinkNode>(sink_id).packets + net.kernel.records.total_gray_drops(),
//!     1
//! );
//! ```

pub mod event;
pub mod failure;
pub mod kernel;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod pool;
pub mod record;
pub mod scrape;
pub mod switch;
pub mod tap;
pub mod telemetry;
pub mod time;

/// The flight-recorder crate, re-exported so instrumented downstream
/// crates (core, tcp, apps) need no direct `fancy-trace` dependency.
pub use fancy_trace as trace;

/// The metrics-plane crate, re-exported for the same reason: downstream
/// instrumentation reaches `Labels`/`MetricsHub` through `fancy_sim`.
pub use fancy_metrics as metrics;

/// Convenient re-exports for building simulations.
pub mod prelude {
    pub use crate::event::{NodeId, PortId, TimerToken};
    pub use crate::failure::{
        FailureMatcher, FaultPlan, FaultStage, FaultTarget, FaultVerdict, GrayFailure, LossProcess,
    };
    pub use crate::kernel::{Kernel, LinkId};
    pub use crate::link::{Admission, LinkConfig};
    pub use crate::network::Network;
    pub use crate::node::{Node, SinkNode};
    pub use crate::packet::{FlowId, Packet, PacketBuilder, PacketKind};
    pub use crate::pool::{PacketPool, PacketRef};
    pub use crate::record::{DetectionRecord, DetectionScope, DetectorKind, Records};
    pub use crate::scrape::ScrapeNode;
    pub use crate::switch::{Bridge, Fib, PlainSwitch};
    pub use crate::tap::{Capture, TraceTap};
    pub use crate::telemetry::{
        MemorySink, NullSink, PrintSink, TelemetryCounters, TelemetrySink, TelemetrySnapshot,
    };
    pub use crate::time::{transmission_time, SimDuration, SimTime};
    pub use fancy_metrics::{Labels, MetricsHub, Snapshot};
    pub use fancy_trace::{
        DropCause, JsonlWriter, RingRecorder, SharedRecorder, TraceEvent, TraceSink, UNIT_TREE,
    };
}

pub use prelude::*;
