//! Kernel runtime telemetry.
//!
//! The kernel keeps a set of always-on counters that cost one integer
//! add (or max) on paths that already touch the counted object — cheap
//! enough to leave enabled in every run. They answer the operational
//! questions the experiment harness has: is this cell making progress,
//! how deep does its event queue get, how much wall-clock does one
//! simulated second cost, and how many packets did the run actually
//! push.
//!
//! Consumers either read [`crate::kernel::Kernel::telemetry`] directly
//! after a run or attach a [`TelemetrySink`] to the kernel; the network
//! flushes a [`TelemetrySnapshot`] to the sink every time a
//! [`crate::network::Network::run_until`] call returns.
//!
//! Telemetry is strictly observational: no counter feeds back into
//! simulation behavior, so enabling a sink can never change results —
//! the property the parallel sweep runner's bit-identical guarantee
//! rests on.

use std::time::Duration;

use crate::time::SimDuration;

/// Always-on kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// Events dispatched by the run loop (arrivals + timers).
    pub events_dispatched: u64,
    /// Packet-arrival events dispatched.
    pub packet_arrivals: u64,
    /// Timer events dispatched.
    pub timers_fired: u64,
    /// High-water mark of the pending-event queue length.
    pub queue_high_water: u64,
    /// High-water mark of pending *timer* events specifically. Timers
    /// occupy their own lane of the timing wheel, so this is just that
    /// lane's length: a protocol storm shows up here long before it
    /// dominates the overall queue depth.
    pub timer_high_water: u64,
    /// Packets that survived the wire (scheduled to arrive at the peer).
    pub packets_forwarded: u64,
    /// Data packets dropped by gray failures.
    pub packets_gray_dropped: u64,
    /// FANcY/baseline control messages dropped by gray failures.
    pub control_drops: u64,
    /// Packets refused by a traffic-manager queue (congestion).
    pub congestion_drops: u64,
    /// High-water mark of simultaneously in-flight packets in the
    /// kernel's packet pool (its peak memory footprint, in slots).
    pub pool_high_water: u64,
    /// Packet-pool slot reuses: check-ins into previously freed slots
    /// plus in-place forwards. High recycle counts against a low pool
    /// high-water mark mean the hot path runs allocation-free.
    pub pool_recycled: u64,
    /// Packets dropped by the chaos layer ([`crate::failure::FaultPlan`]).
    pub chaos_drops: u64,
    /// Wire duplicates injected by the chaos layer.
    pub chaos_dups: u64,
    /// Packets delayed past later traffic (reordered) by the chaos layer.
    pub chaos_reorders: u64,
    /// Chaos actions (drop/dup/reorder) that hit control messages —
    /// the §4.1 robustness scenario's primary dial.
    pub chaos_control_faults: u64,
    /// Times a switch port fell back to degraded port-level counting
    /// after exhausting protocol retries.
    pub degraded_entries: u64,
}

impl TelemetryCounters {
    /// Fold another counter set into this one (sums, and max for the
    /// queue high-water mark). Used by sweep runners to aggregate
    /// per-cell kernels into one report; the result is independent of
    /// fold order, so parallel aggregation stays deterministic.
    pub fn absorb(&mut self, other: &TelemetryCounters) {
        self.events_dispatched += other.events_dispatched;
        self.packet_arrivals += other.packet_arrivals;
        self.timers_fired += other.timers_fired;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.timer_high_water = self.timer_high_water.max(other.timer_high_water);
        self.packets_forwarded += other.packets_forwarded;
        self.packets_gray_dropped += other.packets_gray_dropped;
        self.control_drops += other.control_drops;
        self.congestion_drops += other.congestion_drops;
        self.pool_high_water = self.pool_high_water.max(other.pool_high_water);
        self.pool_recycled += other.pool_recycled;
        self.chaos_drops += other.chaos_drops;
        self.chaos_dups += other.chaos_dups;
        self.chaos_reorders += other.chaos_reorders;
        self.chaos_control_faults += other.chaos_control_faults;
        self.degraded_entries += other.degraded_entries;
    }

    /// Every counter as a stable `(name, value)` list, in declaration
    /// order. The names are a wire format: `fancy-bench`'s result cache
    /// persists counters through them, so renaming a field here without
    /// bumping the cache schema version invalidates nothing and decodes
    /// garbage — keep them in sync with [`TelemetryCounters::from_pairs`].
    pub fn to_pairs(&self) -> [(&'static str, u64); 16] {
        [
            ("events_dispatched", self.events_dispatched),
            ("packet_arrivals", self.packet_arrivals),
            ("timers_fired", self.timers_fired),
            ("queue_high_water", self.queue_high_water),
            ("timer_high_water", self.timer_high_water),
            ("packets_forwarded", self.packets_forwarded),
            ("packets_gray_dropped", self.packets_gray_dropped),
            ("control_drops", self.control_drops),
            ("congestion_drops", self.congestion_drops),
            ("pool_high_water", self.pool_high_water),
            ("pool_recycled", self.pool_recycled),
            ("chaos_drops", self.chaos_drops),
            ("chaos_dups", self.chaos_dups),
            ("chaos_reorders", self.chaos_reorders),
            ("chaos_control_faults", self.chaos_control_faults),
            ("degraded_entries", self.degraded_entries),
        ]
    }

    /// Rebuild counters from a name-keyed lookup (the inverse of
    /// [`TelemetryCounters::to_pairs`]). `None` as soon as any field is
    /// missing, so a decoder over a partial record fails whole rather
    /// than zero-filling silently.
    pub fn from_pairs(mut get: impl FnMut(&str) -> Option<u64>) -> Option<Self> {
        Some(TelemetryCounters {
            events_dispatched: get("events_dispatched")?,
            packet_arrivals: get("packet_arrivals")?,
            timers_fired: get("timers_fired")?,
            queue_high_water: get("queue_high_water")?,
            timer_high_water: get("timer_high_water")?,
            packets_forwarded: get("packets_forwarded")?,
            packets_gray_dropped: get("packets_gray_dropped")?,
            control_drops: get("control_drops")?,
            congestion_drops: get("congestion_drops")?,
            pool_high_water: get("pool_high_water")?,
            pool_recycled: get("pool_recycled")?,
            chaos_drops: get("chaos_drops")?,
            chaos_dups: get("chaos_dups")?,
            chaos_reorders: get("chaos_reorders")?,
            chaos_control_faults: get("chaos_control_faults")?,
            degraded_entries: get("degraded_entries")?,
        })
    }
}

/// A point-in-time view of a kernel's telemetry, as delivered to sinks.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Cumulative counters since the kernel was created.
    pub counters: TelemetryCounters,
    /// Simulated time elapsed since the start of the run.
    pub sim_elapsed: SimDuration,
    /// Wall-clock time spent inside the run loop so far.
    pub wall_elapsed: Duration,
}

impl TelemetrySnapshot {
    /// Wall-clock seconds the kernel spends per simulated second
    /// (`< 1` means faster than real time). `None` before any
    /// simulated time has passed.
    pub fn wall_secs_per_sim_sec(&self) -> Option<f64> {
        let sim = self.sim_elapsed.as_secs_f64();
        (sim > 0.0).then(|| self.wall_elapsed.as_secs_f64() / sim)
    }

    /// Events dispatched per wall-clock second, the kernel's raw speed.
    pub fn events_per_wall_sec(&self) -> f64 {
        let wall = self.wall_elapsed.as_secs_f64();
        if wall > 0.0 {
            self.counters.events_dispatched as f64 / wall
        } else {
            0.0
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "sim {:.2}s in wall {:.2}s ({:.3} wall-s/sim-s) | {} events ({} arrivals, {} timers), \
             queue high-water {} (timers {}) | fwd {} gray {} ctrl {} cong {} | pool hw {} recycled {} \
             | chaos drop {} dup {} reord {} ctl {} degraded {}",
            self.sim_elapsed.as_secs_f64(),
            self.wall_elapsed.as_secs_f64(),
            self.wall_secs_per_sim_sec().unwrap_or(0.0),
            self.counters.events_dispatched,
            self.counters.packet_arrivals,
            self.counters.timers_fired,
            self.counters.queue_high_water,
            self.counters.timer_high_water,
            self.counters.packets_forwarded,
            self.counters.packets_gray_dropped,
            self.counters.control_drops,
            self.counters.congestion_drops,
            self.counters.pool_high_water,
            self.counters.pool_recycled,
            self.counters.chaos_drops,
            self.counters.chaos_dups,
            self.counters.chaos_reorders,
            self.counters.chaos_control_faults,
            self.counters.degraded_entries,
        )
    }
}

/// Where kernel telemetry is drained to.
///
/// Attached with [`crate::kernel::Kernel::set_telemetry_sink`]; the
/// network calls [`TelemetrySink::record`] once per completed
/// `run_until`, with cumulative counters. `Send` so scenarios carrying
/// a sink can move between sweep worker threads.
pub trait TelemetrySink: Send {
    /// Receive a snapshot. Called after every completed `run_until`.
    fn record(&mut self, snapshot: &TelemetrySnapshot);
}

/// Discards every snapshot.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&mut self, _snapshot: &TelemetrySnapshot) {}
}

/// Prints a labelled one-line summary to stderr per snapshot.
#[derive(Debug, Clone)]
pub struct PrintSink {
    /// Prefix for every line (e.g. the experiment cell name).
    pub label: String,
}

impl PrintSink {
    /// A sink printing with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        PrintSink {
            label: label.into(),
        }
    }
}

impl TelemetrySink for PrintSink {
    fn record(&mut self, snapshot: &TelemetrySnapshot) {
        eprintln!("[telemetry {}] {}", self.label, snapshot.summary());
    }
}

/// Keeps every snapshot in memory for later inspection (tests, reports).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// All recorded snapshots, in order.
    pub snapshots: Vec<TelemetrySnapshot>,
}

impl TelemetrySink for MemorySink {
    fn record(&mut self, snapshot: &TelemetrySnapshot) {
        self.snapshots.push(snapshot.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = TelemetryCounters {
            events_dispatched: 10,
            packet_arrivals: 6,
            timers_fired: 4,
            queue_high_water: 3,
            timer_high_water: 2,
            packets_forwarded: 5,
            packets_gray_dropped: 1,
            control_drops: 0,
            congestion_drops: 2,
            pool_high_water: 4,
            pool_recycled: 100,
            chaos_drops: 2,
            chaos_dups: 1,
            chaos_reorders: 0,
            chaos_control_faults: 1,
            degraded_entries: 0,
        };
        let b = TelemetryCounters {
            events_dispatched: 1,
            packet_arrivals: 1,
            timers_fired: 0,
            queue_high_water: 9,
            timer_high_water: 1,
            packets_forwarded: 1,
            packets_gray_dropped: 0,
            control_drops: 3,
            congestion_drops: 0,
            pool_high_water: 7,
            pool_recycled: 11,
            chaos_drops: 3,
            chaos_dups: 0,
            chaos_reorders: 4,
            chaos_control_faults: 2,
            degraded_entries: 1,
        };
        a.absorb(&b);
        assert_eq!(a.events_dispatched, 11);
        assert_eq!(a.queue_high_water, 9);
        assert_eq!(a.timer_high_water, 2);
        assert_eq!(a.control_drops, 3);
        assert_eq!(a.congestion_drops, 2);
        assert_eq!(a.pool_high_water, 7, "pool high-water maxes");
        assert_eq!(a.pool_recycled, 111, "pool recycles sum");
        assert_eq!(a.chaos_drops, 5);
        assert_eq!(a.chaos_dups, 1);
        assert_eq!(a.chaos_reorders, 4);
        assert_eq!(a.chaos_control_faults, 3);
        assert_eq!(a.degraded_entries, 1);
    }

    #[test]
    fn absorb_is_order_independent() {
        let sets = [
            TelemetryCounters {
                events_dispatched: 5,
                queue_high_water: 2,
                ..Default::default()
            },
            TelemetryCounters {
                events_dispatched: 7,
                queue_high_water: 8,
                ..Default::default()
            },
            TelemetryCounters {
                events_dispatched: 1,
                queue_high_water: 4,
                ..Default::default()
            },
        ];
        let mut fwd = TelemetryCounters::default();
        let mut rev = TelemetryCounters::default();
        for s in &sets {
            fwd.absorb(s);
        }
        for s in sets.iter().rev() {
            rev.absorb(s);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn snapshot_rates() {
        let snap = TelemetrySnapshot {
            counters: TelemetryCounters {
                events_dispatched: 1000,
                ..Default::default()
            },
            sim_elapsed: SimDuration::from_secs(4),
            wall_elapsed: Duration::from_secs(2),
        };
        assert_eq!(snap.wall_secs_per_sim_sec(), Some(0.5));
        assert_eq!(snap.events_per_wall_sec(), 500.0);
        assert!(snap.summary().contains("1000 events"));

        let empty = TelemetrySnapshot {
            counters: TelemetryCounters::default(),
            sim_elapsed: SimDuration::from_nanos(0),
            wall_elapsed: Duration::ZERO,
        };
        assert_eq!(empty.wall_secs_per_sim_sec(), None);
        assert_eq!(empty.events_per_wall_sec(), 0.0);
    }

    #[test]
    fn pairs_round_trip_every_field() {
        // Distinct values per field so a swapped name in either
        // direction can't cancel out.
        let pairs: Vec<(&'static str, u64)> = TelemetryCounters::default()
            .to_pairs()
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (*name, 1000 + i as u64))
            .collect();
        let back = TelemetryCounters::from_pairs(|name| {
            pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
        })
        .expect("all fields present");
        assert_eq!(back.to_pairs().to_vec(), pairs);

        // A single missing field fails the whole decode.
        for missing in 0..pairs.len() {
            let partial = TelemetryCounters::from_pairs(|name| {
                pairs
                    .iter()
                    .enumerate()
                    .find(|(i, (n, _))| *n == name && *i != missing)
                    .map(|(_, (_, v))| *v)
            });
            assert_eq!(partial, None, "field {} missing", pairs[missing].0);
        }
    }

    #[test]
    fn memory_sink_collects() {
        let mut sink = MemorySink::default();
        let snap = TelemetrySnapshot {
            counters: TelemetryCounters::default(),
            sim_elapsed: SimDuration::from_secs(1),
            wall_elapsed: Duration::from_millis(1),
        };
        sink.record(&snap);
        sink.record(&snap);
        assert_eq!(sink.snapshots.len(), 2);
        NullSink.record(&snap); // must not blow up
    }
}
