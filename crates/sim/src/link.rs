//! Links and the traffic-manager queue model.
//!
//! Each link is full-duplex with independent per-direction state. The
//! upstream switch's traffic manager (TM) — where congestion losses happen
//! in real switches (§3 of the paper) — is modelled as a byte-bounded
//! backlog at the head of each link direction: a packet is *admitted* if the
//! serialization backlog has room, and dropped as congestion otherwise.
//! Gray failures are applied strictly after admission, when the packet is
//! put on the wire, mirroring FANcY's counter placement (after the upstream
//! TM, before the downstream one).

use crate::event::{NodeId, PortId};
use crate::failure::{FaultPlan, GrayFailure};
use crate::time::{transmission_time, SimDuration, SimTime};

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Traffic-manager queue capacity in bytes (per direction). A packet is
    /// dropped as congestion if the backlog would exceed this.
    pub tm_capacity_bytes: u64,
}

impl LinkConfig {
    /// A convenience constructor with a queue sized for 50 ms of traffic —
    /// a common ISP buffer provisioning rule.
    pub fn new(bandwidth_bps: u64, delay: SimDuration) -> Self {
        LinkConfig {
            bandwidth_bps,
            delay,
            tm_capacity_bytes: (bandwidth_bps / 8) / 20, // 50 ms worth
        }
    }

    /// Override the TM queue capacity.
    pub fn with_tm_capacity(mut self, bytes: u64) -> Self {
        self.tm_capacity_bytes = bytes;
        self
    }
}

impl Default for LinkConfig {
    /// The paper's headline ISP setting: 10 ms inter-switch delay (§5) on a
    /// 100 Gbps link.
    fn default() -> Self {
        LinkConfig::new(100_000_000_000, SimDuration::from_millis(10))
    }
}

/// Per-direction dynamic state.
#[derive(Debug, Default)]
pub(crate) struct LinkDir {
    /// Time at which the serializer becomes free.
    pub next_free: SimTime,
    /// Gray failures installed on this direction.
    pub failures: Vec<GrayFailure>,
    /// Adversarial fault plans (chaos layer) installed on this direction.
    /// Evaluated after `failures`, each with its own seeded RNG.
    pub chaos: Vec<FaultPlan>,
    /// Packets put on the wire on this direction.
    pub tx_packets: u64,
    /// Bytes put on the wire on this direction.
    pub tx_bytes: u64,
    /// Largest backlog observed since the last
    /// [`Link::take_max_backlog`] call (queue-size monitoring, the
    /// paper's footnote 2 on distinguishing congestion in partial
    /// deployments).
    pub max_backlog: u64,
}

/// A full-duplex link between two node ports.
#[derive(Debug)]
pub struct Link {
    /// Static configuration.
    pub cfg: LinkConfig,
    /// The two attachment points: `ends[0]` and `ends[1]`.
    pub ends: [(NodeId, PortId); 2],
    pub(crate) dirs: [LinkDir; 2],
}

/// Result of a traffic-manager admission check.
#[derive(Debug, Clone, Copy)]
pub struct Admission {
    pub(crate) link: usize,
    /// Direction index: packets flow from `ends[dir]` to `ends[1 - dir]`.
    pub(crate) dir: usize,
    /// Time the last bit leaves the serializer.
    pub departure_end: SimTime,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig, a: (NodeId, PortId), b: (NodeId, PortId)) -> Self {
        Link {
            cfg,
            ends: [a, b],
            dirs: [LinkDir::default(), LinkDir::default()],
        }
    }

    /// Current backlog of direction `dir` in bytes, at time `now`.
    pub(crate) fn backlog_bytes(&self, dir: usize, now: SimTime) -> u64 {
        let backlog = self.dirs[dir].next_free.saturating_since(now);
        if backlog.as_nanos() == 0 {
            // Idle serializer — the common case on uncongested links;
            // skip the wide multiply/divide below.
            return 0;
        }
        // bytes = ns * bps / 8e9, in u128 to avoid overflow on fat links.
        ((backlog.as_nanos() as u128 * self.cfg.bandwidth_bps as u128) / 8_000_000_000) as u64
    }

    /// Try to admit `bytes` into direction `dir`'s TM queue at `now`.
    /// On success the serializer is reserved and the departure time returned.
    pub(crate) fn admit(
        &mut self,
        index: usize,
        dir: usize,
        bytes: u64,
        now: SimTime,
    ) -> Option<Admission> {
        let backlog = self.backlog_bytes(dir, now) + bytes;
        if backlog > self.cfg.tm_capacity_bytes {
            let d = &mut self.dirs[dir];
            d.max_backlog = d.max_backlog.max(self.cfg.tm_capacity_bytes);
            return None;
        }
        let d = &mut self.dirs[dir];
        d.max_backlog = d.max_backlog.max(backlog);
        let start = d.next_free.max(now);
        let end = start + transmission_time(bytes as usize, self.cfg.bandwidth_bps);
        d.next_free = end;
        Some(Admission {
            link: index,
            dir,
            departure_end: end,
        })
    }

    /// The receiving end of direction `dir`.
    pub(crate) fn peer(&self, dir: usize) -> (NodeId, PortId) {
        self.ends[1 - dir]
    }

    /// Packets transmitted in direction `dir` so far.
    pub fn tx_packets(&self, dir: usize) -> u64 {
        self.dirs[dir].tx_packets
    }

    /// Bytes transmitted in direction `dir` so far.
    pub fn tx_bytes(&self, dir: usize) -> u64 {
        self.dirs[dir].tx_bytes
    }

    /// The largest TM backlog (bytes) observed in direction `dir` since
    /// the last call, and reset the high-water mark.
    pub fn take_max_backlog(&mut self, dir: usize) -> u64 {
        std::mem::take(&mut self.dirs[dir].max_backlog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        // 8 Mbps link so that 1000 bytes take exactly 1 ms to serialize.
        let cfg = LinkConfig::new(8_000_000, SimDuration::from_millis(10)).with_tm_capacity(3000);
        Link::new(cfg, (0, 0), (1, 0))
    }

    #[test]
    fn admission_reserves_serializer() {
        let mut l = link();
        let a = l.admit(0, 0, 1000, SimTime::ZERO).unwrap();
        assert_eq!(a.departure_end, SimTime(1_000_000));
        // Second packet queues behind the first.
        let b = l.admit(0, 0, 1000, SimTime::ZERO).unwrap();
        assert_eq!(b.departure_end, SimTime(2_000_000));
    }

    #[test]
    fn congestion_drop_when_backlog_full() {
        let mut l = link();
        for _ in 0..3 {
            assert!(l.admit(0, 0, 1000, SimTime::ZERO).is_some());
        }
        // Backlog is now 3000 bytes = capacity; the next packet is dropped.
        assert!(l.admit(0, 0, 1000, SimTime::ZERO).is_none());
        // ... but succeeds once the serializer drains.
        assert!(l.admit(0, 0, 1000, SimTime(1_000_000)).is_some());
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        for _ in 0..3 {
            assert!(l.admit(0, 0, 1000, SimTime::ZERO).is_some());
        }
        assert!(l.admit(0, 0, 1000, SimTime::ZERO).is_none());
        assert!(l.admit(0, 1, 1000, SimTime::ZERO).is_some());
    }

    #[test]
    fn peer_resolution() {
        let l = link();
        assert_eq!(l.peer(0), (1, 0));
        assert_eq!(l.peer(1), (0, 0));
    }

    #[test]
    fn default_is_isp_scale() {
        let cfg = LinkConfig::default();
        assert_eq!(cfg.bandwidth_bps, 100_000_000_000);
        assert_eq!(cfg.delay, SimDuration::from_millis(10));
    }
}
