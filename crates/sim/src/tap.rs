//! Packet-trace taps.
//!
//! A [`TraceTap`] is a transparent two-port node that records every packet
//! crossing it — the simulator's equivalent of `tcpdump` on a link. Used
//! for debugging protocols and by tests that assert on exact packet
//! sequences (e.g. "the tag is stripped after one hop").

use std::any::Any;

use fancy_net::FancyTag;

use crate::kernel::Kernel;
use crate::node::Node;
use crate::packet::PacketKind;
use crate::time::SimTime;

/// One captured packet (metadata only; the packet itself moves on).
#[derive(Debug, Clone)]
pub struct Capture {
    /// Capture time.
    pub time: SimTime,
    /// Ingress port at the tap (0 or 1 — direction of travel).
    pub port: usize,
    /// Packet UID.
    pub uid: u64,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Size in bytes.
    pub size: u32,
    /// FANcY tag, if present when the packet crossed.
    pub tag: Option<FancyTag>,
    /// Short kind label ("data", "ack", "udp", "ctrl", "nack").
    pub kind: &'static str,
}

/// A transparent 2-port capture node (port 0 ↔ port 1).
#[derive(Debug, Default)]
pub struct TraceTap {
    /// Captured packets, in arrival order. Unbounded unless `limit` set.
    pub captures: Vec<Capture>,
    /// Stop recording (but keep forwarding) after this many captures.
    pub limit: Option<usize>,
}

impl TraceTap {
    /// A tap with unbounded capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tap that records at most `limit` packets.
    pub fn with_limit(limit: usize) -> Self {
        TraceTap {
            captures: Vec::new(),
            limit: Some(limit),
        }
    }

    fn kind_label(kind: &PacketKind) -> &'static str {
        match kind {
            PacketKind::TcpData { .. } => "data",
            PacketKind::TcpAck { .. } => "ack",
            PacketKind::Udp { .. } => "udp",
            PacketKind::FancyControl(_) => "ctrl",
            PacketKind::NetSeerNack { .. } => "nack",
        }
    }

    /// Captures traveling port 0 → port 1.
    pub fn forward(&self) -> impl Iterator<Item = &Capture> {
        self.captures.iter().filter(|c| c.port == 0)
    }

    /// Captures traveling port 1 → port 0.
    pub fn reverse(&self) -> impl Iterator<Item = &Capture> {
        self.captures.iter().filter(|c| c.port == 1)
    }

    /// Render the capture like a terse tcpdump.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.captures {
            let _ = writeln!(
                out,
                "{:>12.6}s [{}] {:08x} -> {:08x} {:>5}B {}{}",
                c.time.as_secs_f64(),
                if c.port == 0 { ">" } else { "<" },
                c.src,
                c.dst,
                c.size,
                c.kind,
                match c.tag {
                    Some(FancyTag::Dedicated { counter_id }) => format!(" tag=D{counter_id}"),
                    Some(FancyTag::Tree { slot, index }) => format!(" tag=T{slot}:{index}"),
                    None => String::new(),
                }
            );
        }
        out
    }
}

impl Node for TraceTap {
    fn on_packet(&mut self, ctx: &mut Kernel, port: usize, pkt: crate::pool::PacketRef) {
        if self.limit.is_none_or(|l| self.captures.len() < l) {
            let p = ctx.pkt(pkt);
            self.captures.push(Capture {
                time: ctx.now(),
                port,
                uid: p.uid,
                src: p.src,
                dst: p.dst,
                size: p.size,
                tag: p.tag,
                kind: Self::kind_label(&p.kind),
            });
        }
        ctx.forward(1 - port, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::network::Network;
    use crate::node::SinkNode;
    use crate::packet::PacketBuilder;
    use crate::time::SimDuration;

    #[test]
    fn tap_records_and_forwards() {
        let mut net = Network::new(1);
        let a = net.add_node(Box::new(SinkNode::default()));
        let tap = net.add_node(Box::new(TraceTap::new()));
        let b = net.add_node(Box::new(SinkNode::default()));
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::from_micros(10));
        net.connect(tap, a, cfg); // tap port 0 ↔ a
        net.connect(tap, b, cfg); // tap port 1 ↔ b
        for seq in 0..5u64 {
            let pkt = PacketBuilder::new(0x11, 0x22, 100, PacketKind::Udp { flow: 1, seq }).build();
            net.kernel.inject(tap, 0, pkt, SimTime(seq * 1000));
        }
        net.run_to_end();
        assert_eq!(net.node::<SinkNode>(b).packets, 5, "forwarding intact");
        let t: &TraceTap = net.node(tap);
        assert_eq!(t.captures.len(), 5);
        assert_eq!(t.forward().count(), 5);
        assert_eq!(t.reverse().count(), 0);
        assert!(t.captures.windows(2).all(|w| w[0].time <= w[1].time));
        let dump = t.dump();
        assert!(dump.contains("udp"), "dump: {dump}");
        assert!(dump.contains("00000022"));
    }

    #[test]
    fn limit_caps_recording_not_forwarding() {
        let mut net = Network::new(1);
        let tap = net.add_node(Box::new(TraceTap::with_limit(2)));
        let a = net.add_node(Box::new(SinkNode::default()));
        let b = net.add_node(Box::new(SinkNode::default()));
        let cfg = LinkConfig::new(1_000_000_000, SimDuration::from_micros(10));
        net.connect(tap, a, cfg);
        net.connect(tap, b, cfg);
        for seq in 0..10u64 {
            let pkt = PacketBuilder::new(1, 2, 100, PacketKind::Udp { flow: 1, seq }).build();
            net.kernel.inject(tap, 0, pkt, SimTime(seq));
        }
        net.run_to_end();
        assert_eq!(net.node::<TraceTap>(tap).captures.len(), 2);
        assert_eq!(net.node::<SinkNode>(b).packets, 10);
    }
}
