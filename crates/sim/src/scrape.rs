//! In-sim metrics scraping: a deterministic "Prometheus server".
//!
//! A [`ScrapeNode`] is an ordinary [`Node`] that ticks a periodic timer
//! at a fixed *sim-time* cadence. Each tick syncs the kernel's always-on
//! [`TelemetryCounters`](crate::telemetry::TelemetryCounters) into
//! gauges, snapshots the attached [`MetricsHub`]'s registry into its
//! scrape series, and emits a [`TraceEvent::Scrape`] marker. Because the
//! cadence is simulated time — not wall clock — the resulting series is
//! a deterministic artifact: the same scenario produces byte-identical
//! scrape rows on any machine at any thread count, unlike a real
//! scraper whose sample points depend on scheduling jitter.
//!
//! The node is opt-in and additive: appending it to a network adds its
//! own timer events to the schedule (so telemetry totals shift by the
//! tick count), but its observations never feed back into simulation
//! state. Attaching a hub *without* a scraper changes nothing at all.

use std::any::Any;

use fancy_trace::TraceEvent;

use crate::event::{PortId, TimerToken};
use crate::kernel::Kernel;
use crate::node::Node;
use crate::pool::PacketRef;
use crate::time::SimDuration;

/// Environment knob for the scrape cadence in milliseconds of sim time
/// (`FANCY_SCRAPE_MS`), read by [`ScrapeNode::from_env`].
pub const SCRAPE_MS_ENV: &str = "FANCY_SCRAPE_MS";

/// Default scrape cadence: 100 ms of sim time.
pub const DEFAULT_SCRAPE_INTERVAL: SimDuration = SimDuration::from_millis(100);

/// The periodic in-sim scraper. See the module docs.
#[derive(Debug)]
pub struct ScrapeNode {
    interval: SimDuration,
    /// Scrapes completed so far (the `seq` of the next `Scrape` event).
    pub scrapes: u64,
}

impl ScrapeNode {
    /// A scraper ticking every `interval` of sim time.
    ///
    /// # Panics
    /// Panics on a zero interval (it would busy-loop the event queue).
    pub fn new(interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "scrape interval must be > 0");
        ScrapeNode {
            interval,
            scrapes: 0,
        }
    }

    /// A scraper with the cadence taken from `FANCY_SCRAPE_MS` (falling
    /// back to [`DEFAULT_SCRAPE_INTERVAL`]; a zero or unparsable value
    /// also falls back rather than panicking on user input).
    pub fn from_env() -> Self {
        let ms = std::env::var(SCRAPE_MS_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0);
        ScrapeNode::new(ms.map_or(DEFAULT_SCRAPE_INTERVAL, SimDuration::from_millis))
    }

    /// The configured cadence.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    fn scrape(&mut self, ctx: &mut Kernel) {
        // Mirror the kernel's flat telemetry into gauges first, so the
        // snapshot carries event-loop/pool/wheel state alongside the
        // protocol metrics. Gauges use plain `set`: within one run the
        // counters are monotone, and the cross-cell merge rule (max)
        // keeps high-water semantics.
        let pairs = ctx.telemetry.to_pairs();
        ctx.metrics(|r| {
            for (name, v) in pairs {
                r.gauge_set(&format!("fancy_kernel_{name}"), Default::default(), v);
            }
        });
        let samples = match ctx.metrics_hub() {
            Some(hub) => hub.record_scrape(ctx.now().as_nanos()),
            None => 0,
        };
        let seq = self.scrapes;
        self.scrapes += 1;
        ctx.trace(|t| TraceEvent::Scrape {
            t,
            seq,
            samples: samples as u64,
        });
    }
}

impl Node for ScrapeNode {
    fn on_start(&mut self, ctx: &mut Kernel) {
        ctx.schedule_timer(self.interval, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Kernel, _port: PortId, _pkt: PacketRef) {
        // Scrapers have no ports; nothing can arrive. Ignore defensively.
    }

    fn on_timer(&mut self, ctx: &mut Kernel, _token: TimerToken) {
        self.scrape(ctx);
        ctx.schedule_timer(self.interval, 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::time::SimTime;
    use fancy_metrics::{Labels, MetricsHub};

    #[test]
    fn scrapes_at_the_configured_cadence() {
        let hub = MetricsHub::new();
        let mut net = Network::new(1);
        net.kernel.set_metrics(hub.clone());
        let scraper = net.add_node(Box::new(ScrapeNode::new(SimDuration::from_millis(10))));
        net.run_until(SimTime(100_000_000));
        // Ticks at 10, 20, …, 100 ms: the tick exactly at the horizon
        // fires (run_until is inclusive of events at the end instant).
        let series = hub.series();
        assert!(
            (9..=10).contains(&series.len()),
            "expected ~10 scrapes, got {}",
            series.len()
        );
        assert_eq!(series[0].0, 10_000_000);
        assert_eq!(series[1].0 - series[0].0, 10_000_000);
        let n: &ScrapeNode = net.node(scraper);
        assert_eq!(n.scrapes as usize, series.len());
        // Kernel telemetry arrived as gauges.
        assert!(series
            .last()
            .unwrap()
            .1
            .gauge("fancy_kernel_events_dispatched", &Labels::new())
            .is_some());
    }

    #[test]
    fn scraper_without_hub_is_harmless() {
        let mut net = Network::new(1);
        net.add_node(Box::new(ScrapeNode::new(SimDuration::from_millis(10))));
        net.run_until(SimTime(50_000_000));
        // No hub: ticks still fire deterministically, nothing recorded.
        assert!(net.kernel.telemetry.timers_fired >= 4);
    }

    #[test]
    fn series_is_deterministic_across_runs() {
        let run = || {
            let hub = MetricsHub::new();
            let mut net = Network::new(7);
            net.kernel.set_metrics(hub.clone());
            net.add_node(Box::new(ScrapeNode::new(SimDuration::from_millis(25))));
            net.run_until(SimTime(200_000_000));
            hub.series()
                .iter()
                .map(|(t, s)| format!("{t} {}", s.to_jsonl()))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(run(), run());
    }
}
