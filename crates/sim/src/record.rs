//! Ground truth and detection records.
//!
//! The kernel keeps two kinds of bookkeeping that experiments need:
//!
//! * **ground truth** — which packets gray failures actually dropped, per
//!   entry (the paper's TPR definitions compare detector output against
//!   packets *actually* lost, §5.1: "When we do not detect any failure ...
//!   we report a TPR of 0"), and
//! * **detections** — what the detectors running inside switches reported,
//!   pushed through [`crate::kernel::Kernel::report`].

use std::collections::HashMap;

use fancy_net::Prefix;

use crate::event::{NodeId, PortId};
use crate::time::SimTime;

/// What a detection refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectionScope {
    /// A single monitored entry (dedicated counter hit).
    Entry(Prefix),
    /// A hash path through a FANcY hash-based tree. Maps to one or a few
    /// entries; the experiment harness resolves paths against the entry
    /// universe with the tree's hash functions.
    HashPath(Vec<u8>),
    /// A uniform random failure over the whole link (§5.1.3).
    Uniform,
    /// The link itself is unresponsive (the sender FSM exhausted its
    /// `X = 5` Start/Stop retransmissions).
    LinkDown,
}

impl DetectionScope {
    /// Short stable name used as a metric label value (matches the
    /// flight recorder's scope names).
    pub fn metric_name(&self) -> &'static str {
        match self {
            DetectionScope::Entry(_) => "entry",
            DetectionScope::HashPath(_) => "path",
            DetectionScope::Uniform => "uniform",
            DetectionScope::LinkDown => "link_down",
        }
    }
}

/// Which mechanism produced a detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// A FANcY dedicated (high-priority) counter mismatch.
    DedicatedCounter,
    /// A FANcY hash-tree leaf counter mismatch after zooming.
    HashTree,
    /// FANcY's majority-of-root-counters uniform-failure check.
    UniformCheck,
    /// The counting protocol's retransmission limit (hard link failure).
    ProtocolTimeout,
    /// A baseline detector, identified by name.
    Baseline(&'static str),
}

impl DetectorKind {
    /// Short stable name used as a metric label value. Baselines use
    /// their bare name (the flight recorder's `baseline:` prefix is a
    /// trace-format concern, not a label).
    pub fn metric_name(&self) -> &'static str {
        match self {
            DetectorKind::DedicatedCounter => "dedicated",
            DetectorKind::HashTree => "tree",
            DetectorKind::UniformCheck => "uniform",
            DetectorKind::ProtocolTimeout => "timeout",
            DetectorKind::Baseline(name) => name,
        }
    }
}

/// One detection event reported by an in-switch detector.
#[derive(Debug, Clone)]
pub struct DetectionRecord {
    /// Simulated time at which the detector flagged the failure.
    pub time: SimTime,
    /// Node that detected (the upstream switch of the counting session).
    pub node: NodeId,
    /// Egress port (link) the detection refers to.
    pub port: PortId,
    /// Affected traffic.
    pub scope: DetectionScope,
    /// Producing mechanism.
    pub detector: DetectorKind,
}

/// Per-entry ground-truth drop statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropStats {
    /// Packets dropped by gray failures for this entry.
    pub count: u64,
    /// Bytes dropped by gray failures for this entry.
    pub bytes: u64,
    /// Time of the first gray drop.
    pub first: Option<SimTime>,
    /// Time of the last gray drop.
    pub last: Option<SimTime>,
}

impl DropStats {
    fn observe(&mut self, now: SimTime, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = Some(now);
    }
}

/// All records accumulated during one simulation run.
#[derive(Debug, Default)]
pub struct Records {
    /// Detections reported by in-switch detectors.
    pub detections: Vec<DetectionRecord>,
    /// Ground truth: gray drops per entry.
    pub gray_drops: HashMap<Prefix, DropStats>,
    /// Individual gray-drop timestamps per entry, kept only when
    /// `log_drop_times` is set (some analyses need e.g. "were packets
    /// dropped in three consecutive counting sessions").
    pub drop_times: HashMap<Prefix, Vec<SimTime>>,
    /// Whether to keep `drop_times` (costs memory on long runs).
    pub log_drop_times: bool,
    /// Total congestion (traffic-manager) drops — never gray failures.
    pub congestion_drops: u64,
    /// Total packets put on the wire across all links.
    pub wire_packets: u64,
    /// Total bytes put on the wire across all links.
    pub wire_bytes: u64,
}

impl Records {
    /// Record a gray drop for `entry` at `now`.
    pub(crate) fn gray_drop(&mut self, entry: Prefix, now: SimTime, bytes: u64) {
        self.gray_drops
            .entry(entry)
            .or_default()
            .observe(now, bytes);
        if self.log_drop_times {
            self.drop_times.entry(entry).or_default().push(now);
        }
    }

    /// Total gray drops across all entries.
    pub fn total_gray_drops(&self) -> u64 {
        self.gray_drops.values().map(|s| s.count).sum()
    }

    /// The first gray-drop time for `entry`, if any packet was dropped.
    pub fn first_drop(&self, entry: Prefix) -> Option<SimTime> {
        self.gray_drops.get(&entry).and_then(|s| s.first)
    }

    /// Detections of a given kind.
    pub fn detections_by(&self, kind: DetectorKind) -> impl Iterator<Item = &DetectionRecord> {
        self.detections.iter().filter(move |d| d.detector == kind)
    }

    /// The earliest detection whose scope is exactly `Entry(entry)`.
    pub fn first_entry_detection(&self, entry: Prefix) -> Option<&DetectionRecord> {
        self.detections
            .iter()
            .filter(|d| d.scope == DetectionScope::Entry(entry))
            .min_by_key(|d| d.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_stats_track_first_and_last() {
        let mut r = Records::default();
        let e = Prefix(42);
        r.gray_drop(e, SimTime(100), 1500);
        r.gray_drop(e, SimTime(300), 500);
        let s = r.gray_drops[&e];
        assert_eq!(s.count, 2);
        assert_eq!(s.bytes, 2000);
        assert_eq!(s.first, Some(SimTime(100)));
        assert_eq!(s.last, Some(SimTime(300)));
        assert_eq!(r.total_gray_drops(), 2);
        assert_eq!(r.first_drop(e), Some(SimTime(100)));
        assert_eq!(r.first_drop(Prefix(1)), None);
    }

    #[test]
    fn drop_times_only_kept_when_enabled() {
        let mut r = Records::default();
        r.gray_drop(Prefix(1), SimTime(5), 100);
        assert!(r.drop_times.is_empty());
        r.log_drop_times = true;
        r.gray_drop(Prefix(1), SimTime(9), 100);
        assert_eq!(r.drop_times[&Prefix(1)], vec![SimTime(9)]);
    }

    #[test]
    fn detection_queries() {
        let mut r = Records::default();
        r.detections.push(DetectionRecord {
            time: SimTime(200),
            node: 0,
            port: 0,
            scope: DetectionScope::Entry(Prefix(7)),
            detector: DetectorKind::DedicatedCounter,
        });
        r.detections.push(DetectionRecord {
            time: SimTime(100),
            node: 0,
            port: 0,
            scope: DetectionScope::Entry(Prefix(7)),
            detector: DetectorKind::HashTree,
        });
        assert_eq!(r.detections_by(DetectorKind::DedicatedCounter).count(), 1);
        assert_eq!(
            r.first_entry_detection(Prefix(7)).unwrap().time,
            SimTime(100)
        );
    }
}
