//! Network assembly and the main simulation loop.

use crate::event::{Event, NodeId};
use crate::kernel::{Kernel, LinkId};
use crate::link::LinkConfig;
use crate::node::Node;
use crate::time::SimTime;

/// A complete simulated network: kernel plus nodes.
pub struct Network {
    /// The kernel (clock, queue, links, records).
    pub kernel: Kernel,
    nodes: Vec<Box<dyn Node>>,
    started: bool,
}

impl Network {
    /// Create an empty network with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Network {
            kernel: Kernel::new(seed),
            nodes: Vec::new(),
            started: false,
        }
    }

    /// Attach a node, returning its ID.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Connect two nodes with a link. Ports are assigned in connection
    /// order on each node (first connection = port 0, and so on).
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "unknown node");
        self.kernel.connect(a, b, cfg, self.nodes.len())
    }

    /// Borrow a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is of a different type.
    pub fn node<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id]
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            self.kernel.current = id;
            self.nodes[id].on_start(&mut self.kernel);
        }
    }

    /// Run the simulation until the event queue drains or the clock passes
    /// `until`. Events scheduled exactly at `until` still fire.
    ///
    /// Updates the kernel's [`crate::telemetry::TelemetryCounters`] as it
    /// dispatches and, if a sink is attached, flushes one cumulative
    /// [`crate::telemetry::TelemetrySnapshot`] before returning.
    pub fn run_until(&mut self, until: SimTime) {
        let wall_start = std::time::Instant::now();
        self.start_if_needed();
        while let Some((t, event)) = self.kernel.queue.pop_until(until) {
            // High-water marks are defined pre-pop: reconstruct the depth
            // the queue had before this event was removed from it.
            let depth = self.kernel.queue.len() as u64 + 1;
            if depth > self.kernel.telemetry.queue_high_water {
                self.kernel.telemetry.queue_high_water = depth;
            }
            let timers = self.kernel.queue.pending_timers() as u64
                + u64::from(matches!(event, Event::Timer { .. }));
            if timers > self.kernel.telemetry.timer_high_water {
                self.kernel.telemetry.timer_high_water = timers;
            }
            self.kernel.set_now(t);
            self.kernel.telemetry.events_dispatched += 1;
            match event {
                Event::Arrival { node, port, pkt } => {
                    self.kernel.telemetry.packet_arrivals += 1;
                    self.kernel.current = node;
                    self.nodes[node].on_packet(&mut self.kernel, port, pkt);
                    // A node that consumed the packet (forwarded it, took
                    // it) left the ref stale; one that merely observed it
                    // leaves it live, and the slot is reclaimed here.
                    self.kernel.release_if_live(pkt);
                }
                Event::Timer { node, token } => {
                    self.kernel.telemetry.timers_fired += 1;
                    self.kernel.current = node;
                    self.nodes[node].on_timer(&mut self.kernel, token);
                }
            }
        }
        // Advance the clock to the horizon even if the queue drained early,
        // so post-run queries see a consistent end time.
        if self.kernel.now() < until && until != SimTime::FAR_FUTURE {
            self.kernel.set_now(until);
        }
        let pool_hw = self.kernel.pool.high_water() as u64;
        if pool_hw > self.kernel.telemetry.pool_high_water {
            self.kernel.telemetry.pool_high_water = pool_hw;
        }
        self.kernel.telemetry.pool_recycled = self.kernel.pool.recycled();
        self.kernel.wall_elapsed += wall_start.elapsed();
        if let Some(mut sink) = self.kernel.sink.take() {
            sink.record(&self.kernel.telemetry_snapshot());
            self.kernel.sink = Some(sink);
        }
    }

    /// Run until the event queue is empty.
    pub fn run_to_end(&mut self) {
        self.run_until(SimTime::FAR_FUTURE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::GrayFailure;
    use crate::node::SinkNode;
    use crate::packet::{Packet, PacketBuilder, PacketKind};
    use crate::time::SimDuration;
    use fancy_net::Prefix;
    use std::any::Any;

    /// A node that sends `n` UDP packets to a destination as fast as the
    /// link accepts them.
    struct Blaster {
        port: usize,
        n: u64,
        dst: u32,
        size: u32,
        sent: u64,
        congestion_dropped: u64,
    }

    impl Blaster {
        fn pkt(&self, seq: u64) -> Packet {
            PacketBuilder::new(1, self.dst, self.size, PacketKind::Udp { flow: 1, seq }).build()
        }
    }

    impl Node for Blaster {
        fn on_start(&mut self, ctx: &mut Kernel) {
            for seq in 0..self.n {
                if ctx.send(self.port, self.pkt(seq)) {
                    self.sent += 1;
                } else {
                    self.congestion_dropped += 1;
                }
            }
        }
        fn on_packet(&mut self, _ctx: &mut Kernel, _port: usize, _pkt: crate::pool::PacketRef) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_net(n: u64, failure: Option<GrayFailure>) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(7);
        let tx = net.add_node(Box::new(Blaster {
            port: 0,
            n,
            dst: 0x0A000001,
            size: 1000,
            sent: 0,
            congestion_dropped: 0,
        }));
        let rx = net.add_node(Box::new(SinkNode::default()));
        let cfg =
            LinkConfig::new(8_000_000, SimDuration::from_millis(5)).with_tm_capacity(1_000_000);
        let link = net.connect(tx, rx, cfg);
        if let Some(f) = failure {
            net.kernel.add_failure(link, tx, f);
        }
        (net, tx, rx)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (mut net, _tx, rx) = two_node_net(10, None);
        net.run_to_end();
        let sink: &SinkNode = net.node(rx);
        assert_eq!(sink.packets, 10);
        assert_eq!(sink.bytes, 10_000);
        assert_eq!(net.kernel.records.wire_packets, 10);
    }

    #[test]
    fn delivery_respects_serialization_and_delay() {
        // 1000 B at 8 Mbps = 1 ms per packet; delay 5 ms. Last of 10 packets
        // finishes serializing at 10 ms, arrives at 15 ms.
        let (mut net, _tx, _rx) = two_node_net(10, None);
        net.run_to_end();
        assert_eq!(net.kernel.now(), SimTime(15_000_000));
    }

    #[test]
    fn blackhole_failure_drops_everything() {
        let f = GrayFailure::single_entry(Prefix::from_addr(0x0A000001), 1.0, SimTime::ZERO);
        let (mut net, _tx, rx) = two_node_net(10, Some(f));
        net.run_to_end();
        let sink: &SinkNode = net.node(rx);
        assert_eq!(sink.packets, 0);
        assert_eq!(net.kernel.records.total_gray_drops(), 10);
        let stats = net.kernel.records.gray_drops[&Prefix::from_addr(0x0A000001)];
        assert_eq!(stats.count, 10);
        assert_eq!(stats.bytes, 10_000);
    }

    #[test]
    fn failure_on_other_entry_is_harmless() {
        let f = GrayFailure::single_entry(Prefix::from_addr(0x0B000001), 1.0, SimTime::ZERO);
        let (mut net, _tx, rx) = two_node_net(10, Some(f));
        net.run_to_end();
        assert_eq!(net.node::<SinkNode>(rx).packets, 10);
        assert_eq!(net.kernel.records.total_gray_drops(), 0);
    }

    #[test]
    fn tm_overflow_counts_as_congestion_not_gray() {
        let mut net = Network::new(7);
        let tx = net.add_node(Box::new(Blaster {
            port: 0,
            n: 10,
            dst: 0x0A000001,
            size: 1000,
            sent: 0,
            congestion_dropped: 0,
        }));
        let rx = net.add_node(Box::new(SinkNode::default()));
        // Tiny TM queue: room for 3 packets of backlog.
        let cfg = LinkConfig::new(8_000_000, SimDuration::from_millis(5)).with_tm_capacity(3000);
        net.connect(tx, rx, cfg);
        net.run_to_end();
        let sink_packets = net.node::<SinkNode>(rx).packets;
        assert_eq!(sink_packets, 3);
        assert_eq!(net.kernel.records.congestion_drops, 7);
        assert_eq!(net.kernel.records.total_gray_drops(), 0);
        assert_eq!(net.node::<Blaster>(tx).congestion_dropped, 7);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let f = GrayFailure::single_entry(Prefix::from_addr(0x0A000001), 0.5, SimTime::ZERO);
            let (mut net, _tx, rx) = two_node_net(100, Some(f));
            net.run_to_end();
            (
                net.node::<SinkNode>(rx).packets,
                net.kernel.records.total_gray_drops(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let (mut net, _tx, rx) = two_node_net(10, None);
        // First arrival is at 1 ms (serialize) + 5 ms (delay) = 6 ms.
        net.run_until(SimTime(5_999_999));
        assert_eq!(net.node::<SinkNode>(rx).packets, 0);
        net.run_until(SimTime(6_000_000));
        assert_eq!(net.node::<SinkNode>(rx).packets, 1);
        net.run_to_end();
        assert_eq!(net.node::<SinkNode>(rx).packets, 10);
    }
}
