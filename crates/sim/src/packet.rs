//! The simulated packet.
//!
//! Like ns-3, the simulator carries *structured* headers rather than byte
//! buffers — parsing costs would dominate event processing otherwise. The
//! structured forms mirror the wire formats in `fancy-net` one-to-one, and
//! round-trip tests over there guarantee the encodings exist.

use fancy_net::{ControlMessage, FancyTag, Prefix};

use crate::time::SimTime;

/// Identifier of a TCP/UDP flow within one experiment.
pub type FlowId = u64;

/// Transport-level payload of a simulated packet.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketKind {
    /// A TCP data segment.
    TcpData {
        /// Flow this segment belongs to.
        flow: FlowId,
        /// Segment sequence number (in packets, not bytes — the flow model
        /// is packet-granular).
        seq: u64,
        /// True if this is a retransmission (Blink keys on this).
        retx: bool,
    },
    /// A (cumulative) TCP acknowledgement.
    TcpAck {
        /// Flow this ACK belongs to.
        flow: FlowId,
        /// Next expected sequence number.
        ack: u64,
    },
    /// An open-loop UDP datagram.
    Udp {
        /// Flow this datagram belongs to.
        flow: FlowId,
        /// Datagram sequence number.
        seq: u64,
    },
    /// A FANcY counting-protocol control message.
    FancyControl(ControlMessage),
    /// A NetSeer-style NACK reporting a gap of lost upstream sequence
    /// numbers on a link (used by the NetSeer baseline).
    NetSeerNack {
        /// First missing link-level sequence number.
        from_seq: u64,
        /// One past the last missing link-level sequence number.
        to_seq: u64,
    },
}

/// A simulated packet.
///
/// Header fields are exactly the ones that gray failures match on (Table 1
/// of the paper) plus what the detectors need.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique packet ID within an experiment (assigned by the kernel).
    pub uid: u64,
    /// Source IPv4 address.
    pub src: u32,
    /// Destination IPv4 address; `Prefix::from_addr(dst)` is the FANcY entry.
    pub dst: u32,
    /// Total packet size in bytes, including headers.
    pub size: u32,
    /// IPv4 identification field (some real gray failures match on it).
    pub ip_id: u16,
    /// FANcY tag, if the packet was tagged by an upstream FANcY switch.
    pub tag: Option<FancyTag>,
    /// Link-level sequence number stamped by the NetSeer baseline, if any.
    pub netseer_seq: Option<u64>,
    /// Transport payload.
    pub kind: PacketKind,
    /// Time the packet was first created (for latency accounting).
    pub created: SimTime,
}

impl Packet {
    /// The monitoring entry this packet belongs to (destination /24).
    #[inline]
    pub fn entry(&self) -> Prefix {
        Prefix::from_addr(self.dst)
    }

    /// The transport flow this packet belongs to, if any.
    #[inline]
    pub fn flow(&self) -> Option<FlowId> {
        match self.kind {
            PacketKind::TcpData { flow, .. }
            | PacketKind::TcpAck { flow, .. }
            | PacketKind::Udp { flow, .. } => Some(flow),
            PacketKind::FancyControl(_) | PacketKind::NetSeerNack { .. } => None,
        }
    }

    /// Is this a FANcY control message?
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(self.kind, PacketKind::FancyControl(_))
    }

    /// Is this a TCP retransmission?
    #[inline]
    pub fn is_retransmission(&self) -> bool {
        matches!(self.kind, PacketKind::TcpData { retx: true, .. })
    }
}

/// A builder for packets, used by hosts and switches.
///
/// Keeps call sites short without a 8-argument constructor.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src: u32,
    dst: u32,
    size: u32,
    ip_id: u16,
    kind: PacketKind,
}

impl PacketBuilder {
    /// Start building a packet of `size` bytes from `src` to `dst`.
    pub fn new(src: u32, dst: u32, size: u32, kind: PacketKind) -> Self {
        PacketBuilder {
            src,
            dst,
            size,
            ip_id: 0,
            kind,
        }
    }

    /// Set the IPv4 identification field.
    pub fn ip_id(mut self, id: u16) -> Self {
        self.ip_id = id;
        self
    }

    /// Finish the packet. `uid` and `created` are stamped by the kernel when
    /// the packet enters the network; the builder leaves them zeroed.
    pub fn build(self) -> Packet {
        Packet {
            uid: 0,
            src: self.src,
            dst: self.dst,
            size: self.size,
            ip_id: self.ip_id,
            tag: None,
            netseer_seq: None,
            kind: self.kind,
            created: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_destination_slash24() {
        let p =
            PacketBuilder::new(1, 0x0A_01_02_03, 1500, PacketKind::Udp { flow: 1, seq: 0 }).build();
        assert_eq!(p.entry(), Prefix::from_addr(0x0A_01_02_FF));
    }

    #[test]
    fn builder_sets_fields() {
        let p = PacketBuilder::new(
            5,
            6,
            640,
            PacketKind::TcpData {
                flow: 9,
                seq: 3,
                retx: true,
            },
        )
        .ip_id(0xE000)
        .build();
        assert_eq!(p.src, 5);
        assert_eq!(p.dst, 6);
        assert_eq!(p.size, 640);
        assert_eq!(p.ip_id, 0xE000);
        assert!(p.is_retransmission());
        assert!(!p.is_control());
    }
}
