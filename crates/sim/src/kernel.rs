//! The simulation kernel: clock, event queue, links, RNG, records.
//!
//! Nodes interact with the world exclusively through `&mut Kernel` — it is
//! the `ctx` handle passed to every [`crate::node::Node`] callback.

use fancy_metrics::{Labels, MetricsHub, Registry};
use fancy_trace::{DropCause, TraceEvent, TraceSink};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::event::{EventQueue, NodeId, PortId, TimerToken};
use crate::failure::{FaultPlan, FaultVerdict, GrayFailure};
use crate::link::{Admission, Link, LinkConfig};
use crate::packet::{Packet, PacketKind};
use crate::pool::{PacketPool, PacketRef};
use crate::record::{DetectionRecord, DetectionScope, DetectorKind, Records};
use crate::telemetry::{TelemetryCounters, TelemetrySink, TelemetrySnapshot};
use crate::time::{SimDuration, SimTime};

/// Index of a link within the kernel.
pub type LinkId = usize;

/// The simulation kernel.
pub struct Kernel {
    now: SimTime,
    pub(crate) queue: EventQueue,
    /// The slab of in-flight packets. Events reference slots by
    /// [`PacketRef`]; the pool recycles storage as packets are
    /// delivered, dropped or forwarded.
    pub(crate) pool: PacketPool,
    pub(crate) links: Vec<Link>,
    /// `(node, port) → (link, direction)` attachment map.
    pub(crate) ports: Vec<Vec<(LinkId, usize)>>,
    /// Node currently being dispatched (so `send` etc. know the caller).
    pub(crate) current: NodeId,
    next_uid: u64,
    rng: SmallRng,
    /// Experiment records (ground truth + detections).
    pub records: Records,
    /// Gray drops of FANcY control messages (kept separate from per-entry
    /// ground truth; the counting protocol must survive these).
    pub control_drops: u64,
    /// Always-on runtime counters (events, queue depth, drop classes).
    /// Strictly observational: nothing here feeds back into simulation.
    pub telemetry: TelemetryCounters,
    /// Wall-clock time accumulated inside `run_until` loops.
    pub(crate) wall_elapsed: std::time::Duration,
    pub(crate) sink: Option<Box<dyn TelemetrySink>>,
    /// Flight recorder. `None` (the default) keeps every emission site a
    /// single branch; see [`Kernel::trace`].
    pub(crate) tracer: Option<Box<dyn TraceSink>>,
    /// Metrics plane. Same contract as the tracer: `None` (the default)
    /// keeps every instrumentation site a single branch, and nothing
    /// recorded here can influence the schedule; see [`Kernel::metrics`].
    pub(crate) metrics: Option<MetricsHub>,
}

impl Kernel {
    pub(crate) fn new(seed: u64) -> Self {
        Kernel {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            pool: PacketPool::new(),
            links: Vec::new(),
            ports: Vec::new(),
            current: 0,
            next_uid: 1,
            rng: SmallRng::seed_from_u64(seed),
            records: Records::default(),
            control_drops: 0,
            telemetry: TelemetryCounters::default(),
            wall_elapsed: std::time::Duration::ZERO,
            sink: None,
            tracer: None,
            metrics: None,
        }
    }

    /// Attach a [`TraceSink`]; every subsequent kernel- and node-level
    /// trace emission lands in it. Replaces any previous sink. Like
    /// telemetry, tracing is strictly observational — the sink cannot
    /// influence the schedule, so traces are identical run-to-run.
    pub fn set_tracer(&mut self, tracer: Box<dyn TraceSink>) {
        self.tracer = Some(tracer);
    }

    /// Detach and return the current trace sink, if any.
    pub fn take_tracer(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take()
    }

    /// Is a trace sink attached? Instrumentation sites with non-trivial
    /// event preparation (cloning a path, reading state twice) check this
    /// first so the disabled path stays a single branch.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Emit a trace event. The closure receives the current time in
    /// nanoseconds and is only invoked when a sink is attached, so the
    /// disabled cost is one `Option` discriminant check.
    #[inline]
    pub fn trace(&mut self, make: impl FnOnce(u64) -> TraceEvent) {
        let t = self.now.as_nanos();
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.record(&make(t));
        }
    }

    /// Attach a [`MetricsHub`]; every subsequent kernel- and node-level
    /// metric update lands in it. Replaces any previous hub. The caller
    /// keeps a clone to read snapshots after (or during) the run.
    pub fn set_metrics(&mut self, hub: MetricsHub) {
        self.metrics = Some(hub);
    }

    /// Detach and return the current metrics hub, if any.
    pub fn take_metrics(&mut self) -> Option<MetricsHub> {
        self.metrics.take()
    }

    /// Borrow the attached metrics hub, if any (the scrape node reads
    /// through this without detaching).
    pub fn metrics_hub(&self) -> Option<&MetricsHub> {
        self.metrics.as_ref()
    }

    /// Is a metrics hub attached? Instrumentation sites with non-trivial
    /// preparation (label building, latency lookups) check this first so
    /// the disabled path stays a single branch — the `trace_enabled`
    /// contract, applied to metrics.
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Update metrics. The closure only runs when a hub is attached, so
    /// the disabled cost is one `Option` discriminant check.
    #[inline]
    pub fn metrics(&mut self, f: impl FnOnce(&mut Registry)) {
        if let Some(hub) = self.metrics.as_ref() {
            hub.with(f);
        }
    }

    /// Attach a [`TelemetrySink`]; the network flushes a snapshot to it
    /// after every completed `run_until`. Replaces any previous sink.
    pub fn set_telemetry_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the current telemetry sink, if any (used by tests
    /// to inspect a `MemorySink` after a run).
    pub fn take_telemetry_sink(&mut self) -> Option<Box<dyn TelemetrySink>> {
        self.sink.take()
    }

    /// A point-in-time snapshot of this kernel's telemetry.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.telemetry,
            sim_elapsed: self.now.duration_since(SimTime::ZERO),
            wall_elapsed: self.wall_elapsed,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn set_now(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
    }

    /// The deterministic RNG for this run.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The node currently being dispatched.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.current
    }

    /// Number of ports attached on node `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.ports.get(node).map_or(0, Vec::len)
    }

    /// Schedule a timer for the *current* node after `delay`.
    pub fn schedule_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let node = self.current;
        self.queue.push_timer(self.now + delay, node, token);
    }

    /// Schedule a timer for an explicit node (used by experiment setup).
    pub fn schedule_timer_for(&mut self, node: NodeId, at: SimTime, token: TimerToken) {
        self.queue.push_timer(at, node, token);
    }

    /// Stamp a fresh packet (uid, creation time) and check it into the
    /// pool. This is the *single* point where packets enter the network;
    /// the pool rejects unstamped packets, so a `PacketBuilder::build`
    /// result can no longer slip in with `uid: 0` through some side door.
    fn check_in(&mut self, mut pkt: Packet, created: SimTime) -> PacketRef {
        if pkt.uid == 0 {
            pkt.uid = self.next_uid;
            self.next_uid += 1;
            pkt.created = created;
        }
        self.pool.insert(pkt)
    }

    /// Deliver a packet directly to a node, bypassing any link — used by
    /// experiment harnesses to inject traffic at a switch's ingress.
    pub fn inject(&mut self, node: NodeId, port: PortId, pkt: Packet, at: SimTime) {
        let r = self.check_in(pkt, at);
        self.queue.push_arrival(at, node, port, r);
    }

    /// Borrow a pooled packet.
    ///
    /// # Panics
    /// Panics if `r` is stale (already delivered, dropped or forwarded).
    #[inline]
    pub fn pkt(&self, r: PacketRef) -> &Packet {
        self.pool.get(r)
    }

    /// Mutably borrow a pooled packet (tag rewriting in switch pipelines).
    ///
    /// # Panics
    /// Panics if `r` is stale.
    #[inline]
    pub fn pkt_mut(&mut self, r: PacketRef) -> &mut Packet {
        self.pool.get_mut(r)
    }

    /// Check a packet out of the pool, consuming the ref. For consumers
    /// that need the packet by value (e.g. a switch absorbing a control
    /// message addressed to it).
    pub fn take_packet(&mut self, r: PacketRef) -> Packet {
        self.pool.remove(r)
    }

    /// Explicitly drop a pooled packet, freeing its slot. Nodes that
    /// simply *ignore* a delivered packet don't need this — the dispatch
    /// loop reclaims unconsumed refs after `on_packet` returns.
    pub fn release(&mut self, r: PacketRef) {
        let _ = self.pool.remove(r);
    }

    /// Reclaim `r` if the node left it in the pool (delivery loop cleanup).
    pub(crate) fn release_if_live(&mut self, r: PacketRef) {
        if self.pool.is_live(r) {
            let _ = self.pool.remove(r);
        }
    }

    /// The in-flight packet pool (observational: high-water, recycles).
    pub fn pool(&self) -> &PacketPool {
        &self.pool
    }

    /// Resolve the current node's `port` to its link attachment.
    fn resolve(&self, port: PortId) -> (LinkId, usize) {
        self.ports[self.current][port]
    }

    /// Phase 1 of sending: try to admit `pkt` into the egress TM queue of
    /// `port`. Returns an [`Admission`] on success; on failure the packet is
    /// accounted as a congestion drop and the caller must discard it.
    ///
    /// Switch implementations that count packets (FANcY) call this first,
    /// count/tag only admitted packets, then call [`Self::wire_send`] —
    /// exactly the "after the upstream TM" counter placement of the paper.
    pub fn tm_admit(&mut self, port: PortId, pkt: &Packet) -> Option<Admission> {
        let (lid, dir) = self.resolve(port);
        let now = self.now;
        match self.links[lid].admit(lid, dir, u64::from(pkt.size), now) {
            Some(a) => Some(a),
            None => {
                self.records.congestion_drops += 1;
                self.telemetry.congestion_drops += 1;
                if self.trace_enabled() {
                    let node = self.current as u64;
                    let (uid, entry, flow, size) = (
                        pkt.uid,
                        u64::from(pkt.entry().0),
                        pkt.flow(),
                        u64::from(pkt.size),
                    );
                    self.trace(|t| TraceEvent::PacketDrop {
                        t,
                        cause: DropCause::Congestion,
                        node,
                        link: Some(lid as u64),
                        dir: Some(dir as u64),
                        uid,
                        entry,
                        flow,
                        size,
                    });
                }
                None
            }
        }
    }

    /// [`Self::tm_admit`] for a packet already in the pool. Does *not*
    /// consume the ref: on congestion the caller still holds the packet
    /// (the dispatch loop reclaims it if the caller just returns).
    pub fn tm_admit_ref(&mut self, port: PortId, r: PacketRef) -> Option<Admission> {
        let size = u64::from(self.pool.get(r).size);
        let (lid, dir) = self.resolve(port);
        let now = self.now;
        match self.links[lid].admit(lid, dir, size, now) {
            Some(a) => Some(a),
            None => {
                self.records.congestion_drops += 1;
                self.telemetry.congestion_drops += 1;
                if self.trace_enabled() {
                    let (uid, entry, flow) = {
                        let p = self.pool.get(r);
                        (p.uid, u64::from(p.entry().0), p.flow())
                    };
                    let node = self.current as u64;
                    self.trace(|t| TraceEvent::PacketDrop {
                        t,
                        cause: DropCause::Congestion,
                        node,
                        link: Some(lid as u64),
                        dir: Some(dir as u64),
                        uid,
                        entry,
                        flow,
                        size,
                    });
                }
                None
            }
        }
    }

    /// Phase 2 of sending: put an admitted packet on the wire. Stamps and
    /// checks the packet into the pool; the wire itself operates on refs.
    pub fn wire_send(&mut self, pkt: Packet, adm: Admission) {
        let r = self.check_in(pkt, self.now);
        self.wire_pooled(r, adm);
    }

    /// Phase 2 for a packet already in the pool (pairs with
    /// [`Self::tm_admit_ref`]). Consumes the ref: the packet rides the
    /// next arrival event under a fresh generation, without being moved.
    pub fn wire_forward(&mut self, r: PacketRef, adm: Admission) {
        let r = self.pool.rebrand(r);
        self.wire_pooled(r, adm);
    }

    /// Put a pooled, admitted packet on the wire. Applies gray failures
    /// and, if the packet survives, schedules its arrival at the peer
    /// after the propagation delay — by ref; the packet never moves.
    fn wire_pooled(&mut self, r: PacketRef, adm: Admission) {
        // Gray failures act on the wire, at the packet's departure time.
        let when = adm.departure_end;
        let mut dropped = false;
        // The chaos layer's combined verdict across installed fault plans:
        // first drop wins, duplication/reordering compose.
        let mut verdict = FaultVerdict::default();
        // Split borrows: failures need &mut rng, &pool and &mut link.dirs.
        let pkt = self.pool.get(r);
        let size = u64::from(pkt.size);
        let is_control = matches!(
            pkt.kind,
            PacketKind::FancyControl(_) | PacketKind::NetSeerNack { .. }
        );
        let (peer, peer_port, delay);
        {
            let link = &mut self.links[adm.link];
            let dir = &mut link.dirs[adm.dir];
            dir.tx_packets += 1;
            dir.tx_bytes += size;
            for f in &dir.failures {
                if f.drops(pkt, when, &mut self.rng) {
                    dropped = true;
                    break;
                }
            }
            if !dropped {
                // Chaos plans draw from their own RNGs, never the kernel's,
                // so installing one cannot shift unrelated randomness.
                for plan in &mut dir.chaos {
                    let v = plan.apply(pkt, when);
                    if v.drop {
                        verdict.drop = true;
                        break;
                    }
                    verdict.duplicate |= v.duplicate;
                    if verdict.extra_delay.is_none() {
                        verdict.extra_delay = v.extra_delay;
                    }
                }
                if verdict.duplicate {
                    // The wire copy is real transmitted traffic.
                    dir.tx_packets += 1;
                    dir.tx_bytes += size;
                }
            }
            (peer, peer_port) = link.peer(adm.dir);
            delay = link.cfg.delay;
        }
        self.records.wire_packets += 1;
        self.records.wire_bytes += size;
        if verdict.drop {
            self.telemetry.chaos_drops += 1;
            if is_control {
                self.telemetry.chaos_control_faults += 1;
            }
            if self.trace_enabled() {
                let uid = self.pool.get(r).uid;
                self.trace(|_| TraceEvent::ChaosInject {
                    t: when.as_nanos(),
                    link: adm.link as u64,
                    dir: adm.dir as u64,
                    action: "drop".to_owned(),
                    uid,
                    control: u64::from(is_control),
                });
            }
            dropped = true;
        }
        if dropped {
            // The slot is recycled on the spot: drops free pool storage.
            let pkt = self.pool.remove(r);
            let cause = match pkt.kind {
                PacketKind::FancyControl(_) | PacketKind::NetSeerNack { .. } => {
                    self.control_drops += 1;
                    self.telemetry.control_drops += 1;
                    DropCause::Control
                }
                _ => {
                    let entry = pkt.entry();
                    self.records.gray_drop(entry, when, size);
                    self.telemetry.packets_gray_dropped += 1;
                    DropCause::Gray
                }
            };
            if self.trace_enabled() {
                let node = self.current as u64;
                let (uid, entry, flow) = (pkt.uid, u64::from(pkt.entry().0), pkt.flow());
                // The wire acts at the packet's departure time, which may
                // trail `now` by the serialization backlog.
                self.trace(|_| TraceEvent::PacketDrop {
                    t: when.as_nanos(),
                    cause,
                    node,
                    link: Some(adm.link as u64),
                    dir: Some(adm.dir as u64),
                    uid,
                    entry,
                    flow,
                    size,
                });
            }
            return;
        }
        self.telemetry.packets_forwarded += 1;
        if self.trace_enabled() {
            let (uid, entry, flow) = {
                let p = self.pool.get(r);
                (p.uid, u64::from(p.entry().0), p.flow())
            };
            self.trace(|_| TraceEvent::PacketForward {
                t: when.as_nanos(),
                link: adm.link as u64,
                dir: adm.dir as u64,
                uid,
                entry,
                flow,
                size,
            });
        }
        let arrive = when + delay;
        if verdict.duplicate {
            // A wire duplicate: the copy keeps the original's uid (it is
            // the same packet twice, as a downstream dedup would see it)
            // and arrives undelayed even if the original is reordered.
            let copy = self.pool.get(r).clone();
            let uid = copy.uid;
            let r2 = self.pool.insert(copy);
            self.queue.push_arrival(arrive, peer, peer_port, r2);
            self.telemetry.packets_forwarded += 1;
            self.telemetry.chaos_dups += 1;
            if is_control {
                self.telemetry.chaos_control_faults += 1;
            }
            if self.trace_enabled() {
                self.trace(|_| TraceEvent::ChaosInject {
                    t: when.as_nanos(),
                    link: adm.link as u64,
                    dir: adm.dir as u64,
                    action: "dup".to_owned(),
                    uid,
                    control: u64::from(is_control),
                });
            }
        }
        let arrive = match verdict.extra_delay {
            Some(extra) => {
                self.telemetry.chaos_reorders += 1;
                if is_control {
                    self.telemetry.chaos_control_faults += 1;
                }
                if self.trace_enabled() {
                    let uid = self.pool.get(r).uid;
                    self.trace(|_| TraceEvent::ChaosInject {
                        t: when.as_nanos(),
                        link: adm.link as u64,
                        dir: adm.dir as u64,
                        action: "reorder".to_owned(),
                        uid,
                        control: u64::from(is_control),
                    });
                }
                arrive + extra
            }
            None => arrive,
        };
        self.queue.push_arrival(arrive, peer, peer_port, r);
    }

    /// Convenience: admit + wire-send in one call (hosts, simple switches).
    /// Returns false if the packet was dropped by the TM (congestion).
    pub fn send(&mut self, port: PortId, pkt: Packet) -> bool {
        match self.tm_admit(port, &pkt) {
            Some(adm) => {
                self.wire_send(pkt, adm);
                true
            }
            None => false,
        }
    }

    /// Forward a pooled packet out `port`: TM admission, then the wire.
    /// Consumes the ref either way — on success the packet rides the next
    /// arrival event under a fresh generation; on congestion its slot is
    /// freed. Returns false on a congestion drop.
    pub fn forward(&mut self, port: PortId, r: PacketRef) -> bool {
        match self.tm_admit_ref(port, r) {
            Some(adm) => {
                self.wire_forward(r, adm);
                true
            }
            None => {
                let _ = self.pool.remove(r);
                false
            }
        }
    }

    /// Report a detection from the current node.
    pub fn report(&mut self, port: PortId, scope: DetectionScope, detector: DetectorKind) {
        if self.metrics_enabled() {
            let detector_name = detector.metric_name();
            let scope_name = scope.metric_name();
            // Detection latency against ground truth: an entry-scoped
            // detection measures from that entry's first gray drop; wider
            // scopes measure from the earliest drop of the run (a `min`
            // over the map's values, so hash iteration order is moot).
            let onset = match &scope {
                DetectionScope::Entry(p) => self.records.gray_drops.get(p).and_then(|s| s.first),
                _ => self
                    .records
                    .gray_drops
                    .values()
                    .filter_map(|s| s.first)
                    .min(),
            };
            let now = self.now;
            self.metrics(|r| {
                r.inc(
                    "fancy_detections_total",
                    Labels::new()
                        .with("detector", detector_name)
                        .with("scope", scope_name),
                );
                if let Some(first) = onset.filter(|&first| first <= now) {
                    r.observe(
                        "fancy_detection_latency_ns",
                        Labels::new().with("detector", detector_name),
                        now.duration_since(first).as_nanos(),
                    );
                }
            });
        }
        if self.trace_enabled() {
            let node = self.current as u64;
            let (scope_name, entry, path) = match &scope {
                DetectionScope::Entry(p) => ("entry", Some(u64::from(p.0)), Vec::new()),
                DetectionScope::HashPath(p) => {
                    ("path", None, p.iter().map(|&b| u64::from(b)).collect())
                }
                DetectionScope::Uniform => ("uniform", None, Vec::new()),
                DetectionScope::LinkDown => ("link_down", None, Vec::new()),
            };
            let detector_name = match detector {
                DetectorKind::DedicatedCounter => "dedicated".to_owned(),
                DetectorKind::HashTree => "tree".to_owned(),
                DetectorKind::UniformCheck => "uniform".to_owned(),
                DetectorKind::ProtocolTimeout => "timeout".to_owned(),
                DetectorKind::Baseline(name) => format!("baseline:{name}"),
            };
            self.trace(|t| TraceEvent::Detection {
                t,
                node,
                port: port as u64,
                detector: detector_name,
                scope: scope_name.to_owned(),
                entry,
                path,
            });
        }
        let rec = DetectionRecord {
            time: self.now,
            node: self.current,
            port,
            scope,
            detector,
        };
        self.records.detections.push(rec);
    }

    /// Install a gray failure on a link direction. `from` names the node
    /// whose *egress* traffic is affected.
    pub fn add_failure(&mut self, link: LinkId, from: NodeId, failure: GrayFailure) {
        let l = &mut self.links[link];
        let dir = if l.ends[0].0 == from {
            0
        } else if l.ends[1].0 == from {
            1
        } else {
            panic!("node {from} is not an endpoint of link {link}");
        };
        l.dirs[dir].failures.push(failure);
    }

    /// Install an adversarial [`FaultPlan`] on a link direction. `from`
    /// names the node whose *egress* traffic the plan acts on — installing
    /// different plans per direction gives asymmetric loss. Plans apply
    /// after gray failures, at the packet's departure time.
    pub fn add_fault_plan(&mut self, link: LinkId, from: NodeId, plan: FaultPlan) {
        let l = &mut self.links[link];
        let dir = if l.ends[0].0 == from {
            0
        } else if l.ends[1].0 == from {
            1
        } else {
            panic!("node {from} is not an endpoint of link {link}");
        };
        l.dirs[dir].chaos.push(plan);
    }

    /// Remove all failures and fault plans from every link (used by
    /// repair scenarios).
    pub fn clear_failures(&mut self) {
        for l in &mut self.links {
            for d in &mut l.dirs {
                d.failures.clear();
                d.chaos.clear();
            }
        }
    }

    /// Access a link's static configuration and counters.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    /// Number of links installed so far. Because ids are assigned in
    /// connect order, this is also the id the *next* link will get —
    /// scenario builders use it to name a link in error context.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// High-water TM backlog (bytes) of the current node's egress `port`
    /// since the last call; resets the mark. Lets switches discard
    /// measurements taken while queues were long (the paper's footnote 2).
    pub fn take_max_backlog(&mut self, port: PortId) -> u64 {
        let (lid, dir) = self.resolve(port);
        self.links[lid].take_max_backlog(dir)
    }

    /// High-water TM backlog of an arbitrary link direction (`from` names
    /// the transmitting node), resetting the mark. This models queue-depth
    /// telemetry exported by path devices — what a partial FANcY
    /// deployment polls to discard congestion-tainted measurements
    /// (footnote 2 of the paper).
    pub fn take_link_max_backlog(&mut self, link: LinkId, from: NodeId) -> u64 {
        let l = &mut self.links[link];
        let dir = if l.ends[0].0 == from {
            0
        } else if l.ends[1].0 == from {
            1
        } else {
            panic!("node {from} is not an endpoint of link {link}");
        };
        l.take_max_backlog(dir)
    }

    pub(crate) fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        cfg: LinkConfig,
        nodes_len: usize,
    ) -> LinkId {
        while self.ports.len() < nodes_len {
            self.ports.push(Vec::new());
        }
        let pa = self.ports[a].len();
        let pb = self.ports[b].len();
        let id = self.links.len();
        self.links.push(Link::new(cfg, (a, pa), (b, pb)));
        self.ports[a].push((id, 0));
        self.ports[b].push((id, 1));
        id
    }
}
