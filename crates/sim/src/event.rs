//! The discrete-event queue.
//!
//! A binary heap ordered by `(time, insertion sequence)`. The sequence
//! tie-break makes event ordering — and therefore whole experiments —
//! fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::Packet;
use crate::time::SimTime;

/// Node index within a [`crate::network::Network`].
pub type NodeId = usize;

/// Port index local to a node (assigned in connection order).
pub type PortId = usize;

/// Opaque timer token; its meaning is private to the node that set it.
pub type TimerToken = u64;

/// A scheduled simulation event.
#[derive(Debug)]
pub enum Event {
    /// A packet arrives at `node` on `port`.
    Arrival {
        /// Receiving node.
        node: NodeId,
        /// Ingress port at the receiving node.
        port: PortId,
        /// The packet.
        pkt: Packet,
    },
    /// A timer set by `node` fires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// The token the node passed when scheduling.
        token: TimerToken,
    },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of pending events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    /// Pending `Event::Timer`s, tracked separately so telemetry can
    /// report a timer high-water mark distinct from the overall queue
    /// depth (there is no separate timer wheel — timers and arrivals
    /// share this one heap).
    timers: usize,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        if matches!(event, Event::Timer { .. }) {
            self.timers += 1;
        }
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| {
            if matches!(s.event, Event::Timer { .. }) {
                self.timers -= 1;
            }
            (s.at, s.event)
        })
    }

    /// Number of pending timer events.
    pub fn pending_timers(&self) -> usize {
        self.timers
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), Event::Timer { node: 0, token: 3 });
        q.push(SimTime(10), Event::Timer { node: 0, token: 1 });
        q.push(SimTime(20), Event::Timer { node: 0, token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime(5), Event::Timer { node: 0, token });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pending_timers_tracks_timer_events_only() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), Event::Timer { node: 0, token: 1 });
        q.push(SimTime(2), Event::Timer { node: 0, token: 2 });
        assert_eq!(q.pending_timers(), 2);
        q.pop();
        assert_eq!(q.pending_timers(), 1);
        q.pop();
        assert_eq!(q.pending_timers(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(7), Event::Timer { node: 1, token: 0 });
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(7));
        assert!(q.pop().is_none());
    }
}
