//! The discrete-event scheduler: a hierarchical timing wheel.
//!
//! Events are totally ordered by `(time, insertion sequence)` — the
//! sequence tie-break makes event ordering, and therefore whole
//! experiments, fully deterministic. The original implementation was a
//! single `BinaryHeap`; this one is a two-level timing wheel that
//! preserves *exactly* the same total order (proven by the golden-trace
//! equivalence tests in `fancy-bench` and a differential property test
//! against a reference heap) while making push/pop cheaper and, in
//! steady state, allocation-free:
//!
//! * **Near wheel** — `WHEEL_SLOTS` buckets of `SLOT_NS` nanoseconds
//!   each (a ~33 ms horizon). A push lands in its bucket in O(1); the
//!   bucket `Vec`s are drained in place and keep their capacity.
//! * **Current heap** — the bucket under the cursor is drained into a
//!   small binary heap that yields its entries in `(time, seq)` order.
//!   Pushes at already-drained times (re-entrant sends at `now`) go
//!   straight here, so non-monotonic pushes are handled exactly.
//! * **Overflow heap** — entries beyond the wheel horizon (200 ms RTOs,
//!   flow start timers) wait in a conventional binary heap and migrate
//!   into the wheel as the cursor approaches them.
//!
//! Timers and packet arrivals live in separate, identically-ordered
//! *lanes* sharing one global sequence counter; a pop compares the two
//! lane heads by `(time, seq)`. This gives telemetry its pending-timer
//! count for free — it is the timer lane's length — instead of the old
//! per-push/pop `matches!` bookkeeping.
//!
//! Ordering argument (why the wheel cannot reorder): every entry in the
//! current heap has `slot(at) < cursor`, every entry in a wheel bucket
//! has `cursor <= slot(at) < cursor + WHEEL_SLOTS`, and every overflow
//! entry has `slot(at) >= cursor + WHEEL_SLOTS` (migration restores
//! this invariant each time the cursor moves). Slot numbers are
//! monotonic in time, so everything in the current heap precedes
//! everything still in the wheel, which precedes everything in
//! overflow. The current heap itself is ordered by `(time, seq)`, and
//! refills only happen when it is empty — so pops see the exact global
//! `(time, seq)` order the single heap produced.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::pool::PacketRef;
use crate::time::SimTime;

/// Node index within a [`crate::network::Network`].
pub type NodeId = usize;

/// Port index local to a node (assigned in connection order).
pub type PortId = usize;

/// Opaque timer token; its meaning is private to the node that set it.
pub type TimerToken = u64;

/// A scheduled simulation event. 8-byte packet refs (not packets) ride
/// the queue, so `Event` is small and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A packet arrives at `node` on `port`.
    Arrival {
        /// Receiving node.
        node: NodeId,
        /// Ingress port at the receiving node.
        port: PortId,
        /// Handle to the packet in the kernel's [`crate::pool::PacketPool`].
        pkt: PacketRef,
    },
    /// A timer set by `node` fires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// The token the node passed when scheduling.
        token: TimerToken,
    },
}

/// log2 of the wheel bucket width in nanoseconds: 2^14 ns ≈ 16.4 µs.
const SLOT_BITS: u32 = 14;
/// Buckets in the near wheel (power of two): horizon ≈ 33.6 ms. Link
/// delays and pacing timers land here; 200 ms RTOs go to overflow.
const WHEEL_SLOTS: usize = 2048;

#[inline]
fn slot_of(at: SimTime) -> u64 {
    at.0 >> SLOT_BITS
}

struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One typed lane of the scheduler: a full near-wheel/current/overflow
/// stack for a single event payload type.
struct Lane<T> {
    /// Entries at already-passed slots, ordered by `(at, seq)`. Pops
    /// come exclusively from here; it refills only when empty.
    current: BinaryHeap<Entry<T>>,
    /// The near wheel. Bucket `s % WHEEL_SLOTS` holds slot `s` while
    /// `cursor <= s < cursor + WHEEL_SLOTS`.
    slots: Vec<Vec<Entry<T>>>,
    /// Entries beyond the wheel horizon.
    overflow: BinaryHeap<Entry<T>>,
    /// First slot not yet drained into `current` (absolute, unwrapped).
    cursor: u64,
    /// Entries currently in `slots`.
    near: usize,
    /// Total entries in the lane.
    len: usize,
}

impl<T> Default for Lane<T> {
    fn default() -> Self {
        Lane {
            current: BinaryHeap::new(),
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            near: 0,
            len: 0,
        }
    }
}

impl<T> Lane<T> {
    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.len += 1;
        let s = slot_of(at);
        let e = Entry { at, seq, item };
        if s < self.cursor {
            // The slot was already drained: this is a push at (or before)
            // the current time, which must still sort against everything
            // already in the current heap.
            self.current.push(e);
        } else if s < self.cursor + WHEEL_SLOTS as u64 {
            self.slots[(s as usize) & (WHEEL_SLOTS - 1)].push(e);
            self.near += 1;
        } else {
            self.overflow.push(e);
        }
    }

    /// Pull overflow entries that now fit inside the wheel window.
    #[inline]
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + WHEEL_SLOTS as u64;
        while let Some(e) = self.overflow.peek() {
            let s = slot_of(e.at);
            if s >= horizon {
                break;
            }
            debug_assert!(s >= self.cursor, "overflow entry behind the cursor");
            let e = self.overflow.pop().expect("peeked entry vanished");
            self.slots[(s as usize) & (WHEEL_SLOTS - 1)].push(e);
            self.near += 1;
        }
    }

    /// Refill `current` from the wheel/overflow if it ran dry.
    #[inline]
    fn advance(&mut self) {
        while self.current.is_empty() && (self.near > 0 || !self.overflow.is_empty()) {
            if self.near == 0 {
                // The wheel is empty; jump the cursor straight to the
                // earliest overflow entry instead of stepping empty slots.
                let min_slot = slot_of(self.overflow.peek().expect("checked non-empty").at);
                if min_slot > self.cursor {
                    self.cursor = min_slot;
                }
                self.migrate_overflow();
                continue;
            }
            let bucket = &mut self.slots[(self.cursor as usize) & (WHEEL_SLOTS - 1)];
            self.near -= bucket.len();
            // drain() keeps the bucket's capacity: steady state reuses it.
            for e in bucket.drain(..) {
                self.current.push(e);
            }
            self.cursor += 1;
            self.migrate_overflow();
        }
    }

    /// `(time, seq)` of the lane head, advancing the wheel as needed.
    #[inline]
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.advance();
        self.current.peek().map(|e| (e.at, e.seq))
    }

    /// Pop the lane head right after a successful [`Lane::peek_key`]:
    /// `current` is known to be primed, so skip the refill check.
    #[inline]
    fn pop_primed(&mut self) -> Entry<T> {
        self.len -= 1;
        self.current.pop().expect("peeked lane head vanished")
    }
}

/// Node/port indices are stored as `u32` so an arrival entry is 32
/// bytes: heap sifts and bucket drains move less memory. Four billion
/// nodes is far beyond any simulated topology (debug-asserted on push).
#[derive(Clone, Copy)]
struct ArrivalItem {
    node: u32,
    port: u32,
    pkt: PacketRef,
}

#[derive(Clone, Copy)]
struct TimerItem {
    node: u32,
    token: TimerToken,
}

/// Priority queue of pending events: two typed timing-wheel lanes
/// (arrivals, timers) merged on pop by a shared `(time, seq)` order.
#[derive(Default)]
pub struct EventQueue {
    arrivals: Lane<ArrivalItem>,
    timers: Lane<TimerItem>,
    /// Global insertion sequence, shared by both lanes so the merged
    /// order is exactly the single-queue insertion order.
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        match event {
            Event::Arrival { node, port, pkt } => self.push_arrival(at, node, port, pkt),
            Event::Timer { node, token } => self.push_timer(at, node, token),
        }
    }

    /// Schedule a packet arrival at absolute time `at`.
    #[inline]
    pub fn push_arrival(&mut self, at: SimTime, node: NodeId, port: PortId, pkt: PacketRef) {
        debug_assert!(node <= u32::MAX as usize && port <= u32::MAX as usize);
        let seq = self.seq;
        self.seq += 1;
        self.arrivals.push(
            at,
            seq,
            ArrivalItem {
                node: node as u32,
                port: port as u32,
                pkt,
            },
        );
    }

    /// Schedule a timer at absolute time `at`.
    #[inline]
    pub fn push_timer(&mut self, at: SimTime, node: NodeId, token: TimerToken) {
        debug_assert!(node <= u32::MAX as usize);
        let seq = self.seq;
        self.seq += 1;
        self.timers.push(
            at,
            seq,
            TimerItem {
                node: node as u32,
                token,
            },
        );
    }

    /// Pop the earliest event, if any. Lane heads are compared by
    /// `(time, seq)`; sequences are globally unique, so there are no ties.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_until(SimTime::FAR_FUTURE)
    }

    /// Pop the earliest event if it is at or before `until`; `None`
    /// otherwise (the event stays queued). This is the dispatch loop's
    /// single entry point: peeking and popping in one pass advances the
    /// wheel cursors once per event instead of twice.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, Event)> {
        let take_arrival = match (self.arrivals.peek_key(), self.timers.peek_key()) {
            (None, None) => return None,
            (Some(a), None) => {
                if a.0 > until {
                    return None;
                }
                true
            }
            (None, Some(t)) => {
                if t.0 > until {
                    return None;
                }
                false
            }
            (Some(a), Some(t)) => {
                let head = if a < t { a } else { t };
                if head.0 > until {
                    return None;
                }
                a < t
            }
        };
        if take_arrival {
            let e = self.arrivals.pop_primed();
            Some((
                e.at,
                Event::Arrival {
                    node: e.item.node as NodeId,
                    port: e.item.port as PortId,
                    pkt: e.item.pkt,
                },
            ))
        } else {
            let e = self.timers.pop_primed();
            Some((
                e.at,
                Event::Timer {
                    node: e.item.node as NodeId,
                    token: e.item.token,
                },
            ))
        }
    }

    /// Number of pending timer events — the timer lane's length; no
    /// per-event bookkeeping needed.
    pub fn pending_timers(&self) -> usize {
        self.timers.len
    }

    /// Time of the earliest pending event. Advances the wheel cursors
    /// (hence `&mut`), which does not observably change the queue.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match (self.arrivals.peek_key(), self.timers.peek_key()) {
            (None, None) => None,
            (Some((t, _)), None) | (None, Some((t, _))) => Some(t),
            (Some((ta, sa)), Some((tt, st))) => Some(if (ta, sa) < (tt, st) { ta } else { tt }),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.arrivals.len + self.timers.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_ref(idx: u32) -> PacketRef {
        PacketRef { idx, gen: 0 }
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                Event::Arrival { pkt, .. } => u64::from(pkt.index()),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), Event::Timer { node: 0, token: 3 });
        q.push(SimTime(10), Event::Timer { node: 0, token: 1 });
        q.push(SimTime(20), Event::Timer { node: 0, token: 2 });
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime(5), Event::Timer { node: 0, token });
        }
        assert_eq!(drain_tokens(&mut q), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_by_insertion_order_across_lanes() {
        let mut q = EventQueue::new();
        // Same timestamp, alternating lanes: pops must interleave in
        // exact insertion order, not lane-by-lane.
        q.push_timer(SimTime(5), 0, 100);
        q.push_arrival(SimTime(5), 0, 0, dummy_ref(101));
        q.push_timer(SimTime(5), 0, 102);
        q.push_arrival(SimTime(5), 0, 0, dummy_ref(103));
        assert_eq!(drain_tokens(&mut q), vec![100, 101, 102, 103]);
    }

    #[test]
    fn pending_timers_tracks_timer_events_only() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), Event::Timer { node: 0, token: 1 });
        q.push_arrival(SimTime(1), 0, 0, dummy_ref(9));
        q.push(SimTime(2), Event::Timer { node: 0, token: 2 });
        assert_eq!(q.pending_timers(), 2);
        assert_eq!(q.len(), 3);
        q.pop(); // timer 1 (seq 0)
        assert_eq!(q.pending_timers(), 1);
        q.pop(); // arrival
        assert_eq!(q.pending_timers(), 1);
        q.pop(); // timer 2
        assert_eq!(q.pending_timers(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(7), Event::Timer { node: 1, token: 0 });
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(7));
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_timers_cross_the_overflow_heap() {
        let mut q = EventQueue::new();
        // 200 ms RTO: far beyond the ~33 ms wheel horizon.
        q.push_timer(SimTime(200_000_000), 0, 42);
        // Near arrivals inside the wheel.
        q.push_arrival(SimTime(10_000), 0, 0, dummy_ref(1));
        q.push_arrival(SimTime(50_000_000), 0, 0, dummy_ref(2));
        assert_eq!(q.peek_time(), Some(SimTime(10_000)));
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 42]);
    }

    #[test]
    fn timers_at_the_exact_horizon_land_in_overflow_in_order() {
        // The near wheel covers slots [cursor, cursor + WHEEL_SLOTS);
        // a timer at exactly WHEEL_SLOTS << SLOT_BITS (the horizon,
        // with cursor 0) is the first instant *outside* the window and
        // must go to the overflow heap — bucketing it would alias onto
        // slot 0 and fire 33 ms early.
        const HORIZON_NS: u64 = (WHEEL_SLOTS as u64) << SLOT_BITS;
        let mut q = EventQueue::new();
        q.push_timer(SimTime(HORIZON_NS), 0, 2);
        q.push_timer(SimTime(HORIZON_NS - 1), 0, 1); // last wheel slot
        q.push_timer(SimTime(HORIZON_NS), 0, 3); // same-time tie
        q.push_timer(SimTime(HORIZON_NS + 1), 0, 4);
        assert_eq!(q.timers.near, 1, "horizon-1 must stay in the wheel");
        assert_eq!(q.timers.overflow.len(), 3, "horizon+ must overflow");
        // (time, seq) order is preserved across the boundary: the tie
        // at the horizon pops in insertion order.
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3, 4]);
    }

    #[test]
    fn push_at_drained_time_still_sorts_correctly() {
        let mut q = EventQueue::new();
        q.push_timer(SimTime(1_000_000), 0, 1);
        q.push_timer(SimTime(2_000_000), 0, 3);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(1_000_000));
        // Push at a time the cursor already passed (a node reacting at
        // `now`): must pop before the 2 ms timer.
        q.push_timer(SimTime(1_000_000), 0, 2);
        assert_eq!(drain_tokens(&mut q), vec![2, 3]);
    }

    #[test]
    fn cursor_jumps_over_idle_gaps() {
        let mut q = EventQueue::new();
        // Events separated by multiples of the wheel horizon: each pop
        // after a gap requires an overflow jump, not slot-by-slot walks.
        for i in 0..5u64 {
            q.push_timer(SimTime(i * 300_000_000), 0, i);
        }
        assert_eq!(drain_tokens(&mut q), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        // Deterministic scrambled times, popping halfway through.
        for i in 0..64u64 {
            let t = (i * 2_654_435_761) % 40_000_000;
            q.push_timer(SimTime(t), 0, t);
        }
        for _ in 0..32 {
            popped.push(q.pop().unwrap().0);
        }
        for i in 0..64u64 {
            let t = (i * 40_503) % 40_000_000;
            q.push_timer(SimTime(t), 0, t);
        }
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        // Every event is accounted for, and times never run backwards
        // within each popping phase; exact (time, seq) equivalence with a
        // reference heap is covered by the differential property test.
        assert_eq!(popped.len(), 128);
        assert!(popped[..32].windows(2).all(|w| w[0] <= w[1]));
        assert!(popped[32..].windows(2).all(|w| w[0] <= w[1]));
    }
}
