//! Hand-counted chaos-layer telemetry (ISSUE 4 satellite).
//!
//! A fixed schedule of data and control packets crosses one link under
//! fault plans whose probabilities are all 0 or 1 inside exact windows,
//! so every counter — injected drops, duplicates, reorders, control
//! faults — is known by hand before the run. Also pins down that chaos
//! traces are seed-deterministic end to end.

use std::any::Any;

use fancy_net::{ControlBody, ControlMessage, SessionKind};
use fancy_sim::prelude::*;

/// Sends a fixed schedule of packets; `schedule[i]` fires at timer `i`.
struct ChaosBlaster {
    schedule: Vec<(SimTime, PacketKind)>,
    sent: u64,
}

impl ChaosBlaster {
    fn new(schedule: Vec<(SimTime, PacketKind)>) -> Self {
        ChaosBlaster { schedule, sent: 0 }
    }
}

impl Node for ChaosBlaster {
    fn on_start(&mut self, ctx: &mut Kernel) {
        for (i, &(t, _)) in self.schedule.iter().enumerate() {
            ctx.schedule_timer(t.duration_since(SimTime::ZERO), i as u64);
        }
    }
    fn on_packet(&mut self, _ctx: &mut Kernel, _port: PortId, _pkt: PacketRef) {}
    fn on_timer(&mut self, ctx: &mut Kernel, token: u64) {
        let (_, kind) = self.schedule[token as usize].clone();
        let pkt = PacketBuilder::new(1, 0x0A_00_00_01, 200, kind).build();
        if ctx.send(0, pkt) {
            self.sent += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn udp(seq: u64) -> PacketKind {
    PacketKind::Udp { flow: 0, seq }
}

fn start_msg(session_id: u32) -> PacketKind {
    PacketKind::FancyControl(ControlMessage {
        kind: SessionKind::Tree,
        session_id,
        body: ControlBody::Start,
    })
}

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

/// Build and run the hand-counted scenario, returning (net, recorder).
fn run_scenario(seed: u64) -> (Network, SharedRecorder) {
    // 10 UDP packets at t = 0..10 ms (one per ms), 5 Starts at 20..25 ms.
    let mut schedule: Vec<(SimTime, PacketKind)> = (0..10).map(|i| (ms(i), udp(i))).collect();
    schedule.extend((0..5u64).map(|i| (ms(20 + i), start_msg(i as u32 + 1))));

    let mut net = Network::new(seed);
    let tx = net.add_node(Box::new(ChaosBlaster::new(schedule)));
    let rx = net.add_node(Box::new(SinkNode::default()));
    // 100 Gbps: a 200 B packet serializes in 16 ns, so departure times sit
    // a hair after the send instants and window arithmetic stays exact.
    let cfg = LinkConfig::new(100_000_000_000, SimDuration::from_millis(1));
    let link = net.connect(tx, rx, cfg);

    // Window [2ms, 5ms): drops the UDP packets sent at 2, 3, 4 ms → 3 drops.
    net.kernel.add_fault_plan(
        link,
        tx,
        FaultPlan::new(11).stage(
            FaultStage::new(FaultTarget::Data)
                .bernoulli(1.0)
                .window(ms(2), ms(5)),
        ),
    );
    // Window [6ms, 8ms): duplicates the UDP packets at 6, 7 ms → 2 dups.
    net.kernel.add_fault_plan(
        link,
        tx,
        FaultPlan::new(12).stage(
            FaultStage::new(FaultTarget::Data)
                .duplicate(1.0)
                .window(ms(6), ms(8)),
        ),
    );
    // Window [8ms, 10ms): reorders the UDP packets at 8, 9 ms → 2 reorders.
    net.kernel.add_fault_plan(
        link,
        tx,
        FaultPlan::new(13).stage(
            FaultStage::new(FaultTarget::Data)
                .reorder(
                    1.0,
                    SimDuration::from_micros(100),
                    SimDuration::from_micros(100),
                )
                .window(ms(8), ms(10)),
        ),
    );
    // Window [20ms, 22ms): drops the Starts at 20, 21 ms → 2 control faults.
    net.kernel.add_fault_plan(
        link,
        tx,
        FaultPlan::new(14).stage(
            FaultStage::new(FaultTarget::Control(None))
                .bernoulli(1.0)
                .window(ms(20), ms(22)),
        ),
    );

    let recorder = SharedRecorder::new(4096);
    net.kernel.set_tracer(Box::new(recorder.clone()));
    net.run_to_end();
    (net, recorder)
}

#[test]
fn hand_counted_chaos_telemetry() {
    let (net, recorder) = run_scenario(7);
    let t = &net.kernel.telemetry;

    // 3 data drops + 2 control drops.
    assert_eq!(t.chaos_drops, 5, "chaos drops");
    assert_eq!(t.chaos_dups, 2, "chaos dups");
    assert_eq!(t.chaos_reorders, 2, "chaos reorders");
    assert_eq!(t.chaos_control_faults, 2, "control faults");
    // Chaos data drops land in the gray ground truth; control drops in
    // the control tally — existing accounting must keep balancing.
    assert_eq!(t.packets_gray_dropped, 3);
    assert_eq!(t.control_drops, 2);
    // Survivors: 7 UDP + 2 duplicate copies + 3 Starts.
    assert_eq!(t.packets_forwarded, 12);
    assert_eq!(net.node::<ChaosBlaster>(0).sent, 15);

    // The same counts must be visible as ChaosInject trace events.
    let events = recorder.snapshot();
    let count = |action: &str| {
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ChaosInject { action: a, .. } if a == action))
            .count() as u64
    };
    assert_eq!(count("drop"), 5);
    assert_eq!(count("dup"), 2);
    assert_eq!(count("reorder"), 2);
    let control_flagged = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::ChaosInject { control: 1, .. }))
        .count();
    assert_eq!(control_flagged, 2);
}

#[test]
fn chaos_traces_are_seed_deterministic() {
    let (_, a) = run_scenario(7);
    let (_, b) = run_scenario(7);
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert!(!a.to_jsonl().is_empty());
}

#[test]
fn duplicate_keeps_uid_and_reorder_shifts_arrival() {
    let (_, recorder) = run_scenario(7);
    let events = recorder.snapshot();
    // Each dup ChaosInject shares its uid with a PacketForward of the
    // original — the wire carries the same packet twice.
    let dup_uids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ChaosInject { action, uid, .. } if action == "dup" => Some(*uid),
            _ => None,
        })
        .collect();
    assert_eq!(dup_uids.len(), 2);
    for uid in dup_uids {
        let forwarded = events
            .iter()
            .any(|e| matches!(e, TraceEvent::PacketForward { uid: u, .. } if *u == uid));
        assert!(forwarded, "duplicate uid {uid} has no PacketForward");
    }
}
