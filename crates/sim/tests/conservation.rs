//! Property tests of the simulator's conservation invariants.
//!
//! Whatever the topology, loss model or load: every packet put on a wire
//! is either delivered or accounted as a gray drop, and every packet
//! offered to a TM is either admitted or accounted as a congestion drop.
//! The TPR/FPR arithmetic of the whole evaluation rests on these.

use std::any::Any;

use proptest::prelude::*;

use fancy_net::Prefix;
use fancy_sim::prelude::*;

/// A node that sends a fixed schedule of UDP packets.
struct Blaster {
    schedule: Vec<(SimTime, u32, u32)>, // (time, dst, size)
    sent: u64,
    congestion_dropped: u64,
}

impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Kernel) {
        for (i, &(t, _, _)) in self.schedule.iter().enumerate() {
            ctx.schedule_timer(t.duration_since(SimTime::ZERO), i as u64);
        }
    }
    fn on_packet(&mut self, _ctx: &mut Kernel, _port: PortId, _pkt: PacketRef) {}
    fn on_timer(&mut self, ctx: &mut Kernel, token: u64) {
        let (_, dst, size) = self.schedule[token as usize];
        let pkt = PacketBuilder::new(
            1,
            dst,
            size,
            PacketKind::Udp {
                flow: 0,
                seq: token,
            },
        )
        .build();
        if ctx.send(0, pkt) {
            self.sent += 1;
        } else {
            self.congestion_dropped += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sent_equals_received_plus_dropped(
        seed in any::<u64>(),
        n in 1usize..400,
        loss in 0.0f64..1.0,
        bw_kbps in 64u64..100_000,
        tm_capacity in 1_500u64..100_000,
    ) {
        let mut net = Network::new(seed);
        let schedule: Vec<(SimTime, u32, u32)> = (0..n)
            .map(|i| {
                (
                    SimTime((i as u64 * 7919) % 1_000_000_000),
                    0x0A_00_00_01 + (i as u32 % 5) * 256,
                    64 + (i as u32 * 97) % 1400,
                )
            })
            .collect();
        let tx = net.add_node(Box::new(Blaster {
            schedule,
            sent: 0,
            congestion_dropped: 0,
        }));
        let rx = net.add_node(Box::new(SinkNode::default()));
        let cfg = LinkConfig::new(bw_kbps * 1000, SimDuration::from_millis(3))
            .with_tm_capacity(tm_capacity);
        let link = net.connect(tx, rx, cfg);
        net.kernel.add_failure(link, tx, GrayFailure::uniform(loss, SimTime::ZERO));
        net.run_to_end();

        let sent = net.node::<Blaster>(tx).sent;
        let cong = net.node::<Blaster>(tx).congestion_dropped;
        let received = net.node::<SinkNode>(rx).packets;
        let gray = net.kernel.records.total_gray_drops();

        // Conservation: wire admissions = deliveries + gray drops.
        prop_assert_eq!(sent, received + gray, "wire conservation");
        // Kernel and sender agree on congestion accounting.
        prop_assert_eq!(cong, net.kernel.records.congestion_drops);
        // Everything offered is accounted somewhere.
        prop_assert_eq!(sent + cong, n as u64);
        // Byte-level ground truth is consistent with packet counts.
        let gray_bytes: u64 = net.kernel.records.gray_drops.values().map(|s| s.bytes).sum();
        let rx_bytes = net.node::<SinkNode>(rx).bytes;
        prop_assert_eq!(net.kernel.records.wire_bytes, gray_bytes + rx_bytes);
    }

    #[test]
    fn per_entry_ground_truth_sums_to_total(
        seed in any::<u64>(),
        loss in 0.05f64..1.0,
    ) {
        let mut net = Network::new(seed);
        let schedule: Vec<(SimTime, u32, u32)> = (0..300usize)
            .map(|i| (SimTime(i as u64 * 1_000_000), 0x0B_00_00_00 + (i as u32 % 7) * 256, 500))
            .collect();
        let tx = net.add_node(Box::new(Blaster { schedule, sent: 0, congestion_dropped: 0 }));
        let rx = net.add_node(Box::new(SinkNode::default()));
        let link = net.connect(tx, rx, LinkConfig::new(10_000_000, SimDuration::from_millis(1)));
        net.kernel.add_failure(link, tx, GrayFailure::uniform(loss, SimTime::ZERO));
        net.run_to_end();
        let per_entry: u64 = net.kernel.records.gray_drops.values().map(|s| s.count).sum();
        prop_assert_eq!(per_entry, net.kernel.records.total_gray_drops());
        // Only entries that actually carry traffic appear in the ledger.
        for entry in net.kernel.records.gray_drops.keys() {
            prop_assert!(entry.0 >= 0x0B_00_00 && entry.0 < 0x0B_00_08, "entry {entry}");
        }
        // First-drop times are within the run and ordered vs last.
        for s in net.kernel.records.gray_drops.values() {
            prop_assert!(s.first.unwrap() <= s.last.unwrap());
        }
    }

    #[test]
    fn entry_scoped_failures_never_touch_other_entries(
        seed in any::<u64>(),
        victim_idx in 0u32..7,
    ) {
        let victim = Prefix(0x0C_00_00 + victim_idx);
        let mut net = Network::new(seed);
        let schedule: Vec<(SimTime, u32, u32)> = (0..200usize)
            .map(|i| (SimTime(i as u64 * 2_000_000), (0x0C_00_00 + (i as u32 % 7)) << 8 | 1, 400))
            .collect();
        let tx = net.add_node(Box::new(Blaster { schedule, sent: 0, congestion_dropped: 0 }));
        let rx = net.add_node(Box::new(SinkNode::default()));
        let link = net.connect(tx, rx, LinkConfig::new(100_000_000, SimDuration::from_millis(1)));
        net.kernel.add_failure(link, tx, GrayFailure::single_entry(victim, 1.0, SimTime::ZERO));
        net.run_to_end();
        for (entry, s) in &net.kernel.records.gray_drops {
            prop_assert_eq!(*entry, victim, "dropped {} packets of {}", s.count, entry);
        }
    }
}
