//! Pool hygiene across a lossy link: no leaked or double-freed slots.
//!
//! The slab pool panics on double-free and stale refs by construction
//! (generation mismatch), so the failure mode this test can still catch
//! is *leaks*: a drop path that forgets to check its packet back in
//! leaves `live() > 0` after the run and inflates the high-water mark
//! linearly with the drop count. We push >10k packets through a link
//! whose gray failure kills half of them — every packet must end up
//! recycled whether it died on the wire or reached the sink.

use std::any::Any;

use fancy_sim::prelude::*;

/// Streams `n` fixed-size UDP packets out of port 0, one per timer.
struct Flood {
    n: u64,
    spacing: SimDuration,
    congestion_dropped: u64,
}

impl Node for Flood {
    fn on_start(&mut self, ctx: &mut Kernel) {
        for i in 0..self.n {
            ctx.schedule_timer(self.spacing * i, i);
        }
    }
    fn on_packet(&mut self, _ctx: &mut Kernel, _port: PortId, _pkt: PacketRef) {}
    fn on_timer(&mut self, ctx: &mut Kernel, token: u64) {
        let pkt = PacketBuilder::new(
            1,
            0x0A_00_00_01,
            1000,
            PacketKind::Udp {
                flow: 0,
                seq: token,
            },
        )
        .build();
        if !ctx.send(0, pkt) {
            self.congestion_dropped += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn ten_thousand_gray_drops_leak_nothing() {
    const N: u64 = 20_000;
    let mut net = Network::new(0xD00D);
    let tx = net.add_node(Box::new(Flood {
        n: N,
        spacing: SimDuration::from_micros(10),
        congestion_dropped: 0,
    }));
    let rx = net.add_node(Box::new(SinkNode::default()));
    // Plenty of bandwidth: congestion never interferes with the count.
    let cfg = LinkConfig::new(10_000_000_000, SimDuration::from_micros(50));
    let link = net.connect(tx, rx, cfg);
    net.kernel
        .add_failure(link, tx, GrayFailure::uniform(0.5, SimTime::ZERO));
    net.run_to_end();

    let gray = net.kernel.records.total_gray_drops();
    let delivered = net.node::<SinkNode>(rx).packets;
    let congestion = net.node::<Flood>(tx).congestion_dropped;

    // The scenario actually exercised what it claims to: >10k wire drops.
    assert!(gray > 10_000, "only {gray} gray drops");
    assert_eq!(gray + delivered + congestion, N);

    // Pool hygiene: every checked-in packet was checked back out, on
    // both the drop and the delivery path.
    let pool = net.kernel.pool();
    assert_eq!(pool.live(), 0, "leaked {} packet slots", pool.live());
    assert_eq!(pool.checked_in(), N - congestion);
    // Slots were reused, not grown: the high-water mark tracks in-flight
    // packets (~delay/spacing), not the total packet count.
    assert!(
        pool.high_water() < 64,
        "pool grew to {} slots for {N} packets — drop path leaks",
        pool.high_water()
    );
    assert_eq!(
        pool.recycled() + pool.high_water() as u64,
        pool.checked_in(),
        "recycle accounting out of balance"
    );
    // Telemetry mirrors the pool's own counters.
    assert_eq!(
        net.kernel.telemetry.pool_high_water,
        pool.high_water() as u64
    );
    assert_eq!(net.kernel.telemetry.pool_recycled, pool.recycled());
}
