//! Kernel telemetry vs hand-counted ground truth.
//!
//! A three-node scenario (two senders, one sink) with a fully
//! deterministic schedule and an entry-scoped blackhole: every telemetry
//! counter can be predicted exactly from the schedule, and the sink
//! machinery must never change simulation results (telemetry is strictly
//! observational).

use std::any::Any;

use std::sync::{Arc, Mutex};

use fancy_net::Prefix;
use fancy_sim::prelude::*;
use fancy_sim::telemetry::{TelemetrySink, TelemetrySnapshot};

/// Sends a fixed UDP schedule out of port 0.
struct Blaster {
    schedule: Vec<(SimTime, u32, u32)>, // (time, dst, size)
}

impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Kernel) {
        for (i, &(t, _, _)) in self.schedule.iter().enumerate() {
            ctx.schedule_timer(t.duration_since(SimTime::ZERO), i as u64);
        }
    }
    fn on_packet(&mut self, _ctx: &mut Kernel, _port: PortId, _pkt: PacketRef) {}
    fn on_timer(&mut self, ctx: &mut Kernel, token: u64) {
        let (_, dst, size) = self.schedule[token as usize];
        let pkt = PacketBuilder::new(
            1,
            dst,
            size,
            PacketKind::Udp {
                flow: 0,
                seq: token,
            },
        )
        .build();
        ctx.send(0, pkt);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn schedule(n: u64, dst: u32, spacing_us: u64) -> Vec<(SimTime, u32, u32)> {
    (0..n)
        .map(|i| (SimTime(i * spacing_us * 1_000), dst, 400))
        .collect()
}

/// Build the 3-node scenario: blasters `a` (victim traffic, blackholed)
/// and `b` (clean traffic) both feeding sink `c`.
fn three_node(n_a: u64, n_b: u64) -> (Network, NodeId) {
    let victim = Prefix(0x0A_11_22);
    let mut net = Network::new(7);
    let a = net.add_node(Box::new(Blaster {
        schedule: schedule(n_a, victim.host(1), 500),
    }));
    let b = net.add_node(Box::new(Blaster {
        schedule: schedule(n_b, 0x0B_00_00_01, 700),
    }));
    let c = net.add_node(Box::new(SinkNode::default()));
    let wide = LinkConfig::new(1_000_000_000, SimDuration::from_millis(1));
    let link_a = net.connect(a, c, wide);
    net.connect(b, c, wide);
    // Blackhole every one of a's packets from the start.
    net.kernel.add_failure(
        link_a,
        a,
        GrayFailure::single_entry(victim, 1.0, SimTime::ZERO),
    );
    (net, c)
}

#[test]
fn counters_match_hand_counted_events() {
    let (n_a, n_b) = (40u64, 25u64);
    let (mut net, c) = three_node(n_a, n_b);
    net.run_until(SimTime::ZERO + SimDuration::from_secs(1));

    let t = net.kernel.telemetry;
    // Every scheduled send is one timer event.
    assert_eq!(t.timers_fired, n_a + n_b);
    // All of a's packets die on the wire; all of b's arrive.
    assert_eq!(t.packets_gray_dropped, n_a);
    assert_eq!(t.packets_forwarded, n_b);
    assert_eq!(t.packet_arrivals, n_b);
    // The run loop dispatched exactly timers + arrivals.
    assert_eq!(t.events_dispatched, t.timers_fired + t.packet_arrivals);
    // Wide links, no control plane: nothing else dropped.
    assert_eq!(t.congestion_drops, 0);
    assert_eq!(t.control_drops, 0);
    // The queue held the full timer schedule at the start (all sends are
    // scheduled in on_start), and never more than every event dispatched.
    assert!(t.queue_high_water >= n_a + n_b);
    assert!(t.queue_high_water <= t.events_dispatched);

    // Pool accounting: every send checks one packet in (no multi-hop
    // forwarding here), and each check-in either grew the pool to a new
    // high-water mark or recycled a freed slot — the two must sum to the
    // total number of sends.
    assert_eq!(t.pool_high_water + t.pool_recycled, n_a + n_b);
    // Packets live at most one link-delay; with these schedules only a
    // handful of slots are ever needed for 65 packets.
    assert!(
        (1..=4).contains(&t.pool_high_water),
        "pool high-water {}",
        t.pool_high_water
    );
    assert_eq!(net.kernel.pool().live(), 0, "run drained: no packet leaked");

    // Telemetry agrees with the kernel's ground-truth records.
    assert_eq!(
        t.packets_gray_dropped,
        net.kernel.records.total_gray_drops()
    );
    assert_eq!(t.congestion_drops, net.kernel.records.congestion_drops);
    assert_eq!(net.node::<SinkNode>(c).packets, n_b);

    // The snapshot reflects the horizon we ran to.
    let snap = net.kernel.telemetry_snapshot();
    assert_eq!(snap.sim_elapsed, SimDuration::from_secs(1));
    assert_eq!(snap.counters, t);
}

/// A sink sharing its snapshot log with the test through an Arc.
struct SharedSink(Arc<Mutex<Vec<TelemetrySnapshot>>>);

impl TelemetrySink for SharedSink {
    fn record(&mut self, snapshot: &TelemetrySnapshot) {
        self.0.lock().unwrap().push(snapshot.clone());
    }
}

#[test]
fn sink_gets_one_snapshot_per_run_and_changes_nothing() {
    let (mut plain, _) = three_node(40, 25);
    plain.run_until(SimTime::ZERO + SimDuration::from_secs(1));

    let log = Arc::new(Mutex::new(Vec::new()));
    let (mut sunk, _) = three_node(40, 25);
    sunk.kernel
        .set_telemetry_sink(Box::new(SharedSink(Arc::clone(&log))));
    // Three run_until calls → three cumulative snapshots.
    for horizon_ms in [200u64, 600, 1000] {
        sunk.run_until(SimTime::ZERO + SimDuration::from_millis(horizon_ms));
    }
    sunk.kernel
        .take_telemetry_sink()
        .expect("sink still attached");

    let log = log.lock().unwrap();
    assert_eq!(log.len(), 3);
    // Snapshots are cumulative and the last one matches the kernel.
    for pair in log.windows(2) {
        assert!(pair[0].counters.events_dispatched <= pair[1].counters.events_dispatched);
        assert!(pair[0].sim_elapsed <= pair[1].sim_elapsed);
    }
    assert_eq!(log[2].counters, sunk.kernel.telemetry);
    assert_eq!(log[2].sim_elapsed, SimDuration::from_secs(1));

    // Attaching a sink never changes simulation results.
    assert_eq!(sunk.kernel.telemetry, plain.kernel.telemetry);
    assert_eq!(
        sunk.kernel.records.total_gray_drops(),
        plain.kernel.records.total_gray_drops()
    );
}
