//! Differential test: timing-wheel scheduler vs a reference BinaryHeap.
//!
//! The [`fancy_sim::event::EventQueue`] replaced a single `BinaryHeap`
//! with a hierarchical timing wheel (near buckets + overflow heap) for
//! O(1) steady-state pushes. Its one contract is that the *observable*
//! pop sequence is exactly the old one: ascending `(time, insertion
//! seq)` over both lanes. This file checks that contract differentially
//! against the simplest possible model — a binary heap keyed on
//! `(time, global push index)` — under adversarial schedules: duplicate
//! timestamps, timer/arrival interleavings, pops interleaved with
//! pushes (including pushes at already-drained times), and far-future
//! timers that must cross the overflow heap (e.g. 200 ms RTOs).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use fancy_sim::event::{Event, EventQueue};
use fancy_sim::packet::{PacketBuilder, PacketKind};
use fancy_sim::pool::PacketPool;
use fancy_sim::time::SimTime;

/// One scripted operation against both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Push a timer at this absolute nanosecond time.
    Timer(u64),
    /// Push an arrival at this absolute nanosecond time.
    Arrival(u64),
    /// Pop once from both queues and compare.
    Pop,
}

/// The near wheel covers `[now, now + WHEEL_SLOTS << SLOT_BITS)`; a push
/// at exactly this offset is the first one that must take the overflow
/// path (2048 slots × 16.384 µs ≈ 33.6 ms).
const HORIZON_NS: u64 = 2048 << 14;

/// Times deliberately collide (tiny range), span several wheel slots,
/// land far enough out to cross the overflow heap (200 ms is an
/// RTO-scale timer), or straddle the near-wheel horizon where the
/// wheel/overflow routing decision flips.
fn time_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..50,                         // heavy duplicates
        0u64..5_000_000,                  // within the near wheel
        190_000_000u64..210_000_000,      // overflow (RTO scale)
        HORIZON_NS - 40..HORIZON_NS + 40, // horizon boundary
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        time_strategy().prop_map(Op::Timer),
        time_strategy().prop_map(Op::Arrival),
        Just(Op::Pop),
    ]
}

/// What the reference model predicts for one queue entry. The `u64` is
/// the op index the entry was created by, so identity — not just
/// ordering — is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Timer(u64),
    Arrival(u64),
}

fn run_script(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut queue = EventQueue::new();
    let mut pool = PacketPool::new();
    // Reference: min-heap on (time, global insertion seq).
    let mut model: BinaryHeap<Reverse<(SimTime, u64, Kind)>> = BinaryHeap::new();
    let mut seq = 0u64;

    for (i, op) in ops.iter().enumerate() {
        let i = i as u64;
        match *op {
            Op::Timer(t) => {
                queue.push_timer(SimTime(t), i as usize, i);
                model.push(Reverse((SimTime(t), seq, Kind::Timer(i))));
                seq += 1;
            }
            Op::Arrival(t) => {
                let mut pkt =
                    PacketBuilder::new(1, 2, 64, PacketKind::Udp { flow: 0, seq: i }).build();
                pkt.uid = i + 1; // the pool rejects unstamped packets
                let r = pool.insert(pkt);
                queue.push_arrival(SimTime(t), i as usize, 0, r);
                model.push(Reverse((SimTime(t), seq, Kind::Arrival(i))));
                seq += 1;
            }
            Op::Pop => {
                let expected = model.pop().map(|Reverse((at, _, kind))| (at, kind));
                let got = queue.pop().map(|(at, ev)| {
                    let kind = match ev {
                        Event::Timer { node, .. } => Kind::Timer(node as u64),
                        Event::Arrival { node, pkt, .. } => {
                            pool.remove(pkt); // also catches double-delivery
                            Kind::Arrival(node as u64)
                        }
                    };
                    (at, kind)
                });
                prop_assert_eq!(got, expected, "divergence at op {}", i);
            }
        }
    }

    // Drain both to the end: every remaining entry must match too.
    loop {
        let expected = model.pop().map(|Reverse((at, _, kind))| (at, kind));
        let got = queue.pop().map(|(at, ev)| {
            let kind = match ev {
                Event::Timer { node, .. } => Kind::Timer(node as u64),
                Event::Arrival { node, pkt, .. } => {
                    pool.remove(pkt);
                    Kind::Arrival(node as u64)
                }
            };
            (at, kind)
        });
        prop_assert_eq!(got, expected);
        if expected.is_none() {
            break;
        }
    }
    prop_assert_eq!(queue.len(), 0);
    prop_assert!(queue.is_empty());
    // Every arrival was delivered exactly once and checked back out.
    prop_assert_eq!(pool.live(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wheel pops the exact same (time, identity) sequence as the
    /// reference heap for arbitrary push/pop interleavings.
    #[test]
    fn wheel_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_script(&ops)?;
    }

    /// All-duplicate timestamps: ordering degenerates to pure insertion
    /// order, the worst case for any bucketed scheduler.
    #[test]
    fn duplicate_timestamps_preserve_insertion_order(
        n in 1usize..200,
        t in 0u64..100,
        pops in 0usize..50,
    ) {
        let mut ops: Vec<Op> = (0..n)
            .map(|i| if i % 2 == 0 { Op::Timer(t) } else { Op::Arrival(t) })
            .collect();
        for _ in 0..pops {
            ops.push(Op::Pop);
        }
        run_script(&ops)?;
    }

    /// Schedules concentrated within ±2 ns of the near-wheel horizon —
    /// including exactly `HORIZON_NS`, which must land in the overflow
    /// heap — preserve (time, insertion seq) order. A classic off-by-one
    /// here silently reorders same-slot entries rather than crashing, so
    /// only a differential check catches it.
    #[test]
    fn horizon_boundary_preserves_time_seq_order(
        ops in proptest::collection::vec(
            prop_oneof![
                boundary_time().prop_map(Op::Timer),
                boundary_time().prop_map(Op::Arrival),
                Just(Op::Pop),
            ],
            1..300,
        )
    ) {
        run_script(&ops)?;
    }
}

/// Times within ±2 ns of the horizon, with the exact edge over-weighted.
fn boundary_time() -> impl Strategy<Value = u64> {
    prop_oneof![HORIZON_NS - 2..HORIZON_NS + 3, Just(HORIZON_NS),]
}
