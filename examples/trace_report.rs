//! trace-report: render a flight-recorder trace as a timeline + summary.
//!
//! ```sh
//! # Render a trace captured earlier (e.g. by Sweep::trace_dir):
//! cargo run --release --example trace_report -- out/traces/cell-0000.jsonl
//!
//! # No argument: self-test. Runs a tiny linear scenario with the ring
//! # recorder enabled, writes the trace through the JSONL writer, parses
//! # it back, and fails (exit 1) if any line does not round-trip
//! # byte-for-byte or contains an unknown event — the CI schema-drift
//! # gate.
//! cargo run --release --example trace_report
//! ```

use std::process::ExitCode;

use fancy::analysis::timeline::{render_timeline, TimelineReport};
use fancy::prelude::*;
use fancy::sim::trace::{parse_jsonl, JsonlWriter, Profiler, TraceEvent};

/// Timeline lines to show before truncating (self-test mode prints a
/// preview; explicit-file mode prints everything).
const PREVIEW_LINES: usize = 40;

fn main() -> ExitCode {
    match std::env::args().nth(1) {
        Some(path) => render_file(&path),
        None => selftest(),
    }
}

fn render_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_jsonl(&text) {
        Ok(evs) => evs,
        Err((line, e)) => {
            eprintln!("trace-report: {path}:{line}: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let report = TimelineReport::from_events(&events);
    print!("{}", render_timeline(&events, false));
    println!();
    print!("{}", report.render());
    ExitCode::SUCCESS
}

fn selftest() -> ExitCode {
    let mut profiler = Profiler::new();

    // A tiny §5 scenario: one dedicated entry, 10 % gray loss from
    // t = 300 ms, 1.2 s of simulation.
    let victim = Prefix::from_addr(0x0A_00_07_00);
    let flows: Vec<ScheduledFlow> = (0..8)
        .map(|i| ScheduledFlow {
            start: SimTime(i * 50_000_000),
            dst: victim.host(1),
            cfg: FlowConfig::for_rate(2_000_000, 1.0),
        })
        .collect();
    let mut sc = match ScenarioSpec::linear()
        .seed(7)
        .flows(flows)
        .high_priority(vec![victim])
        .build()
    {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("trace-report: scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recorder = SharedRecorder::new(1 << 16);
    sc.net.kernel.set_tracer(Box::new(recorder.clone()));
    sc.fail(GrayFailure::single_entry(
        victim,
        0.10,
        SimTime(300_000_000),
    ));
    profiler.time("simulate", || sc.net.run_until(SimTime(1_200_000_000)));

    let events = recorder.snapshot();
    if recorder.dropped() > 0 {
        eprintln!(
            "trace-report: ring overflowed ({} dropped)",
            recorder.dropped()
        );
        return ExitCode::FAILURE;
    }
    if events.is_empty() {
        eprintln!("trace-report: scenario produced no events");
        return ExitCode::FAILURE;
    }

    // Serialize through the JSONL writer, parse back, and demand an
    // exact value and byte round trip per line. An unknown event or a
    // drifted field fails here.
    let text = profiler.time("serialize", || {
        let mut w = JsonlWriter::new(Vec::new());
        for ev in &events {
            w.record(ev);
        }
        String::from_utf8(w.into_inner().expect("Vec<u8> sink cannot fail"))
            .expect("JSONL is ASCII-safe UTF-8")
    });
    let parsed = match profiler.time("parse", || parse_jsonl(&text)) {
        Ok(p) => p,
        Err((line, e)) => {
            eprintln!("trace-report: self-trace line {line} failed to parse: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if parsed != events {
        eprintln!("trace-report: parsed events differ from recorded events (schema drift)");
        return ExitCode::FAILURE;
    }
    for (i, (line, ev)) in text.lines().zip(&parsed).enumerate() {
        if ev.to_jsonl() != line {
            eprintln!(
                "trace-report: line {} does not round-trip byte-for-byte:\n  in:  {line}\n  out: {}",
                i + 1,
                ev.to_jsonl()
            );
            return ExitCode::FAILURE;
        }
    }

    // `cache_hit` stubs are written by warm sweeps, never by a live
    // kernel, so a simulation can't exercise them — round-trip a
    // synthetic one so schema drift in that variant also fails here.
    let cache_hit = TraceEvent::CacheHit {
        t: 0,
        cell: 12,
        key_hi: 0xDEAD_BEEF_0BAD_CAFE,
        key_lo: 0x0123_4567_89AB_CDEF,
        saved_events: 987_654,
    };
    match parse_jsonl(&format!("{}\n", cache_hit.to_jsonl())) {
        Ok(evs) if evs == [cache_hit.clone()] => {}
        Ok(evs) => {
            eprintln!("trace-report: cache_hit changed in flight: {evs:?}");
            return ExitCode::FAILURE;
        }
        Err((_, e)) => {
            eprintln!("trace-report: synthetic cache_hit failed to parse: {e:?}");
            return ExitCode::FAILURE;
        }
    }

    // Same for `scrape` markers: they come from a ScrapeNode, which this
    // scenario does not install — round-trip a synthetic one so the new
    // metrics-plane variant stays inside the schema gate.
    let scrape = TraceEvent::Scrape {
        t: 100_000_000,
        seq: 41,
        samples: 28,
    };
    match parse_jsonl(&format!("{}\n", scrape.to_jsonl())) {
        Ok(evs) if evs == [scrape.clone()] => {}
        Ok(evs) => {
            eprintln!("trace-report: scrape changed in flight: {evs:?}");
            return ExitCode::FAILURE;
        }
        Err((_, e)) => {
            eprintln!("trace-report: synthetic scrape failed to parse: {e:?}");
            return ExitCode::FAILURE;
        }
    }

    // A gray failure on a dedicated entry must leave a complete causal
    // chain in the trace.
    let report = TimelineReport::from_events(&events);
    if report.onset_ns.is_none() || report.first_detection_ns().is_none() {
        eprintln!("trace-report: expected onset + detection in the self-test trace");
        return ExitCode::FAILURE;
    }

    let timeline = render_timeline(&events, false);
    let lines: Vec<&str> = timeline.lines().collect();
    for line in lines.iter().take(PREVIEW_LINES) {
        println!("{line}");
    }
    if lines.len() > PREVIEW_LINES {
        println!("… ({} more timeline lines)", lines.len() - PREVIEW_LINES);
    }
    println!();
    print!("{}", report.render());
    println!();
    print!("{}", profiler.report());
    println!(
        "\ntrace-report self-test: {} events round-tripped exactly",
        events.len()
    );
    ExitCode::SUCCESS
}
