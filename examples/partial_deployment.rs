//! Partial deployment: FANcY between *remote* switches (§4.3).
//!
//! FANcY does not need every hop upgraded: deployed at two border switches
//! with legacy switches in between, it still detects gray failures
//! anywhere on the path between them — it just can't say which hop is at
//! fault. This example runs `host — F1 — legacy1 — legacy2 — F2 — host`
//! with the failure on the legacy1→legacy2 link and shows F1 localizing
//! the affected entry (but only to "somewhere on the path").
//!
//! ```sh
//! cargo run --release --example partial_deployment
//! ```

use fancy::core::{FancyInput, FancySwitch, TimerConfig, TreeParams};
use fancy::prelude::*;
use fancy::sim::{LinkConfig, Network, SimDuration};
use fancy::tcp::{ReceiverHost, SenderHost};

fn main() {
    let victim = Prefix::from_addr(0x0A_00_07_00);
    let flows: Vec<ScheduledFlow> = (0..40)
        .map(|i| ScheduledFlow {
            start: SimTime(i * 100_000_000),
            dst: victim.host(1),
            cfg: FlowConfig::for_rate(2_000_000, 1.0),
        })
        .collect();

    // Layout for the two FANcY border switches. The path F1→F2 crosses two
    // legacy hops of 5 ms each; timers scale to the end-to-end delay.
    let layout = FancyInput {
        high_priority: vec![victim],
        memory_bytes_per_port: 1 << 20,
        tree: TreeParams::paper_default(),
        timers: TimerConfig::paper_default().for_link_delay(SimDuration::from_millis(10)),
    }
    .translate()
    .expect("layout fits");

    // Control messages must be routable across the legacy hops, so the two
    // border switches get addresses of their own.
    const F1_ADDR: u32 = 0x0C_00_01_01;
    const F2_ADDR: u32 = 0x0C_00_02_01;

    let mut net = Network::new(11);
    let host_a = net.add_node(Box::new(SenderHost::new(0x01_00_00_01, flows)));
    // Shared FIB shape: traffic toward the sender host (and F1) goes out
    // port 0, everything else (receiver, F2) out port 1.
    let mut fib = Fib::new();
    fib.route(Prefix::from_addr(0x01_00_00_01), 0);
    fib.route(Prefix::from_addr(F1_ADDR), 0);
    fib.default_route(1);
    let mut f1_node = FancySwitch::new(fib.clone(), layout.clone(), vec![1], 1);
    f1_node.addr = F1_ADDR;
    f1_node.control_dst.insert(1, F2_ADDR);
    let f1 = net.add_node(Box::new(f1_node));
    // Legacy switches: plain FIB forwarders, no FANcY.
    let legacy1 = net.add_node(Box::new(PlainSwitch::new(fib.clone())));
    let legacy2 = net.add_node(Box::new(PlainSwitch::new(fib.clone())));
    let mut f2_node = FancySwitch::new(fib, layout, Vec::new(), 2);
    f2_node.addr = F2_ADDR;
    let f2 = net.add_node(Box::new(f2_node));
    let host_b = net.add_node(Box::new(ReceiverHost::new()));

    let edge = LinkConfig::new(10_000_000_000, SimDuration::from_micros(10));
    let hop = LinkConfig::new(10_000_000_000, SimDuration::from_millis(5));
    net.connect(host_a, f1, edge);
    net.connect(f1, legacy1, hop);
    let faulty = net.connect(legacy1, legacy2, hop); // failure lives here
    net.connect(legacy2, f2, hop);
    net.connect(f2, host_b, edge);

    let fail_at = SimTime(1_000_000_000);
    net.kernel.add_failure(
        faulty,
        legacy1,
        GrayFailure::single_entry(victim, 0.2, fail_at),
    );
    net.run_until(SimTime(6_000_000_000));

    let det = net
        .kernel
        .records
        .first_entry_detection(victim)
        .expect("remote FANcY pair still detects the mid-path failure");
    println!(
        "failure on the legacy1→legacy2 hop detected by F1 (node {}) {} after onset",
        det.node,
        det.time.duration_since(fail_at)
    );
    assert_eq!(det.node, f1, "the upstream border switch reports it");
    println!(
        "localization: entry {victim} on the F1→F2 *path* — partial deployment \
         trades hop-level localization for coverage, exactly as §4.3 describes."
    );
    let sw: &FancySwitch = net.node(f1);
    let (sessions, _) = sw.sessions_completed(1);
    println!("counting sessions completed across 3 legacy hops: {sessions}");
}
