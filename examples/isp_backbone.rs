//! Network-wide FANcY on a generated ISP backbone.
//!
//! Builds a Topology-Zoo-style backbone (ring + chords, 100 switches by
//! default), runs one network-wide sweep — each cell fails one edge
//! while FANcY monitors *every* edge concurrently — and reports
//! per-edge detection coverage, cross-talk false positives and, on
//! SPIDER-protected edges, the flight-recorder-measured detect+reroute
//! latency against its analytic bound.
//!
//! ```sh
//! cargo run --release --example isp_backbone -- --switches 100 --fail 6
//! ```
//!
//! `--fail 0` fails every edge (one cell each). The CI gate runs this
//! with `--switches 12 --fail 4`.

use std::process::ExitCode;

use fancy::prelude::*;
use fancy_bench::netwide::{run_netwide, NetwideConfig};
use fancy_bench::prelude::Scale;

fn arg(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"));
        }
    }
    default
}

fn main() -> ExitCode {
    let switches = arg("--switches", 100);
    let fail_n = arg("--fail", 6);
    let seed = arg("--seed", 0x15B0) as u64;

    let topo = match isp_backbone(switches, seed) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("isp_backbone: topology: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "backbone: {} switches, {} edges (avg degree {:.1}), fingerprint {:016x}",
        topo.len(),
        topo.edges.len(),
        2.0 * topo.edges.len() as f64 / topo.len() as f64,
        topo.fingerprint(),
    );

    // Deterministic spread of failed edges over the edge list.
    let edges: Option<Vec<usize>> = (fail_n > 0).then(|| {
        let m = fail_n.min(topo.edges.len());
        let step = topo.edges.len() / m;
        (0..m).map(|i| i * step).collect()
    });
    let cfg = NetwideConfig {
        edges,
        ..NetwideConfig::default()
    };
    let report = match run_netwide(&topo, &cfg, &Scale::from_env(), seed ^ 0xBB) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("isp_backbone: sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "\n{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "failed edge", "detected", "det(ms)", "xtalk", "reroute(ms)", "bound(ms)"
    );
    for o in &report.outcomes {
        let ms = |s: f64| {
            if s < 0.0 {
                "-".to_owned()
            } else {
                format!("{:.1}", s * 1e3)
            }
        };
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
            o.name,
            if !o.carries_traffic {
                "dark"
            } else if o.detected {
                "yes"
            } else {
                "NO"
            },
            ms(o.detection_s),
            o.cross_talk,
            ms(o.reroute_s),
            ms(o.bound_s),
        );
    }
    // Per-edge detection-latency quantiles out of the merged metrics
    // snapshots (log2 histograms: quantiles are bucket upper bounds).
    println!("\nper-edge detection latency (merged histograms):");
    let q_ms = |q: Option<u64>| match q {
        Some(ns) => format!("{:.1}", ns as f64 / 1e6),
        None => "-".to_owned(),
    };
    for (edge, h) in report.edge_detection_latency() {
        println!(
            "  {:<16} n={} p50={} ms  p99={} ms  max={} ms",
            edge,
            h.count(),
            q_ms(h.quantile(0.5)),
            q_ms(h.quantile(0.99)),
            q_ms(h.max()),
        );
    }

    println!(
        "\ncoverage {:.0}% over {} traffic-carrying edges; mean detection {:.1} ms; \
         cross-talk {}; reroutes within bound {}/{}",
        report.coverage * 100.0,
        report.outcomes.iter().filter(|o| o.carries_traffic).count(),
        report.mean_detection_s * 1e3,
        report.cross_talk,
        report.reroutes_within_bound,
        report.reroutes_measured,
    );

    // The acceptance bar this example demonstrates: every failed edge
    // that carries traffic is detected, and every flight-recorder-
    // measured SPIDER reroute lands inside its analytic bound.
    if report.coverage < 1.0 {
        eprintln!("isp_backbone: coverage below 100%");
        return ExitCode::FAILURE;
    }
    if report.reroutes_measured == 0 {
        eprintln!("isp_backbone: no SPIDER-protected edge measured a reroute");
        return ExitCode::FAILURE;
    }
    if report.reroutes_within_bound < report.reroutes_measured {
        eprintln!("isp_backbone: a measured reroute exceeded its analytic bound");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
