//! Render the deterministic metrics plane of an `isp_backbone` scenario.
//!
//! Builds a small generated backbone, monitors every edge with FANcY,
//! fails one edge, and scrapes the metrics registry at a fixed sim-time
//! cadence (`FANCY_SCRAPE_MS`, default 100 ms). The run then renders:
//!
//! * the scrape series — one row per in-sim scrape, a deterministic
//!   "time series" no wall-clock scraper could reproduce;
//! * the final snapshot in both exporter formats (Prometheus text
//!   exposition and `fancy-metrics` JSONL).
//!
//! Because every sample is sim-time-derived, the Prometheus output is
//! byte-identical on any machine at any thread count. The CI gate
//! exploits that:
//!
//! ```sh
//! cargo run --release --example metrics_report                    # render
//! cargo run --release --example metrics_report -- --golden tests/golden/metrics_report.prom
//! cargo run --release --example metrics_report -- --write-golden tests/golden/metrics_report.prom
//! ```
//!
//! `--golden` diffs the Prometheus text against the committed file and
//! exits non-zero on any drift (schema-drift guard, same spirit as the
//! `trace_report` self-test).

use std::process::ExitCode;

use fancy::apps::{IncidentConfig, IncidentTracker};
use fancy::prelude::*;
use fancy_bench::netwide::directed_victim;

fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return Some(args.next().unwrap_or_else(|| panic!("{name} needs a path")));
        }
    }
    None
}

fn main() -> ExitCode {
    let seed = 0x5EED_u64;
    let topo = isp_backbone(6, seed).expect("backbone generation");
    let routes = Routes::compute(&topo).expect("route computation");

    // Fail the first edge that carries service traffic, aiming the
    // victim flows along it exactly like the netwide sweep does.
    let (edge, src, dst) = (0..topo.edges.len())
        .find_map(|e| directed_victim(&topo, &routes, e).map(|(s, d)| (e, s, d)))
        .expect("backbone has a traffic-carrying edge");
    let victim = service_prefix(dst);
    let edge_name = topo.edges[edge].name.clone();
    let fail_at = SimTime(1_500_000_000);
    let horizon = SimTime(4_000_000_000);

    let mut flows = uniform_pair_flows(topo.len(), 2, 2_000_000, 1.0, seed);
    for rep in 0..4u64 {
        flows.push(PairFlow {
            src,
            dst,
            start: SimTime(rep * 1_000_000_000),
            cfg: FlowConfig::for_rate(2_000_000, 1.0),
        });
    }
    let mut sc = ScenarioSpec::topology(topo)
        .seed(seed)
        .high_priority(vec![victim])
        .pair_flows(flows)
        .build()
        .expect("scenario build");

    // The metrics plane: a hub on the kernel plus the in-sim scraper.
    let hub = MetricsHub::new();
    sc.net.kernel.set_metrics(hub.clone());
    let scraper = ScrapeNode::from_env();
    let interval = scraper.interval();
    sc.net.add_node(Box::new(scraper));

    sc.fail_edge(edge, GrayFailure::single_entry(victim, 0.5, fail_at));
    sc.net.run_until(horizon);

    // Fold the detection stream into incident-lifecycle metrics.
    let mut tracker = IncidentTracker::new(IncidentConfig::default());
    let incidents =
        tracker.ingest_all_metered(&sc.net.kernel.records.detections, sc.net.kernel.now(), &hub);

    println!(
        "failed edge {edge_name} at {:.1}s; {} incidents; scrape cadence {} ms",
        fail_at.as_nanos() as f64 / 1e9,
        incidents.len(),
        interval.as_nanos() / 1_000_000,
    );

    // The scrape series: every sample point is a sim-time instant.
    let series = hub.series();
    println!("\nscrape series ({} scrapes):", series.len());
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>8}",
        "t(ms)", "samples", "events", "forwarded", "gray"
    );
    let none = Labels::new();
    for (i, (t_ns, snap)) in series.iter().enumerate() {
        // Print every 5th row (plus the last) to keep the table short.
        if i % 5 != 0 && i + 1 != series.len() {
            continue;
        }
        println!(
            "{:>8} {:>8} {:>10} {:>10} {:>8}",
            t_ns / 1_000_000,
            snap.len(),
            snap.gauge("fancy_kernel_events_dispatched", &none)
                .unwrap_or(0),
            snap.gauge("fancy_kernel_packets_forwarded", &none)
                .unwrap_or(0),
            snap.gauge("fancy_kernel_packets_gray_dropped", &none)
                .unwrap_or(0),
        );
    }

    let snap = hub.snapshot();
    let prom = snap.to_prometheus();

    match (flag("--golden"), flag("--write-golden")) {
        (Some(path), _) => {
            let want = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("metrics_report: cannot read golden {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if want != prom {
                eprintln!("metrics_report: Prometheus output drifted from {path}");
                for (i, (w, g)) in prom.lines().zip(want.lines()).enumerate() {
                    if w != g {
                        eprintln!(
                            "  first diff at line {}:\n    got:  {w}\n    want: {g}",
                            i + 1
                        );
                        break;
                    }
                }
                let (got_n, want_n) = (prom.lines().count(), want.lines().count());
                if got_n != want_n {
                    eprintln!("  line count: got {got_n}, want {want_n}");
                }
                eprintln!("  regenerate with: cargo run --release --example metrics_report -- --write-golden {path}");
                return ExitCode::FAILURE;
            }
            println!(
                "\ngolden check: {} lines match {path}",
                prom.lines().count()
            );
        }
        (None, Some(path)) => {
            if let Err(e) = std::fs::write(&path, &prom) {
                eprintln!("metrics_report: cannot write golden {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("\nwrote {} lines to {path}", prom.lines().count());
        }
        (None, None) => {
            println!("\nfinal snapshot — Prometheus text exposition:\n{prom}");
            println!(
                "final snapshot — JSONL ({} samples, {} bytes)",
                snap.len(),
                snap.to_jsonl().len(),
            );
        }
    }
    ExitCode::SUCCESS
}
