//! NOC dashboard: network-wide incident aggregation.
//!
//! Three FANcY switches in a chain, two independent gray failures on
//! different links plus one hard link failure episode. The raw detection
//! stream (dozens of records) is folded into the handful of *incidents* an
//! operator actually triages, with severity and lifecycle.
//!
//! ```sh
//! cargo run --release --example noc_dashboard
//! ```

use fancy::apps::{IncidentConfig, IncidentTracker, Severity};
use fancy::core::{FancyInput, FancySwitch, TimerConfig, TreeParams};
use fancy::prelude::*;
use fancy::sim::{LinkConfig, Network, SimDuration};
use fancy::tcp::{ReceiverHost, SenderHost};

fn main() {
    let entries: Vec<Prefix> = (0..6u32).map(|i| Prefix(0x0A_C0_00 + i)).collect();
    let mut flows = Vec::new();
    for (k, e) in entries.iter().enumerate() {
        for i in 0..60u64 {
            flows.push(ScheduledFlow {
                start: SimTime(i * 150_000_000 + k as u64 * 23_000_000),
                dst: e.host(1),
                cfg: FlowConfig::for_rate(2_000_000, 1.0),
            });
        }
    }
    flows.sort_by_key(|f| f.start);

    let layout = FancyInput {
        high_priority: entries.clone(),
        memory_bytes_per_port: 1 << 20,
        tree: TreeParams::paper_default(),
        timers: TimerConfig::paper_default().for_link_delay(SimDuration::from_millis(5)),
    }
    .translate()
    .unwrap();

    let mut net = Network::new(77);
    let host = net.add_node(Box::new(SenderHost::new(0x01_00_00_01, flows)));
    let mk_fib = || {
        let mut fib = Fib::new();
        fib.route(Prefix::from_addr(0x01_00_00_01), 0);
        fib.default_route(1);
        fib
    };
    let s1 = net.add_node(Box::new(FancySwitch::new(
        mk_fib(),
        layout.clone(),
        vec![1],
        1,
    )));
    let s2 = net.add_node(Box::new(FancySwitch::new(
        mk_fib(),
        layout.clone(),
        vec![1],
        2,
    )));
    let s3 = net.add_node(Box::new(FancySwitch::new(mk_fib(), layout, Vec::new(), 3)));
    let rx = net.add_node(Box::new(ReceiverHost::new()));
    let edge = LinkConfig::new(10_000_000_000, SimDuration::from_micros(10));
    let hop = LinkConfig::new(10_000_000_000, SimDuration::from_millis(5));
    net.connect(host, s1, edge);
    let l12 = net.connect(s1, s2, hop);
    let l23 = net.connect(s2, s3, hop);
    net.connect(s3, rx, edge);

    // Incident 1: entry-scoped gray failure on S1→S2 from t = 1 s.
    net.kernel.add_failure(
        l12,
        s1,
        GrayFailure::single_entry(entries[1], 0.3, SimTime(1_000_000_000)),
    );
    // Incident 2: a different entry on S2→S3 from t = 2 s.
    net.kernel.add_failure(
        l23,
        s2,
        GrayFailure::single_entry(entries[4], 0.5, SimTime(2_000_000_000)),
    );
    // Incident 3: S2→S3 reverse path blackholes between 6 s and 8 s —
    // control replies die, S2 declares the link down, then it recovers.
    net.kernel.add_failure(
        l23,
        s3,
        GrayFailure {
            matcher: fancy::sim::FailureMatcher::Uniform,
            drop_prob: 1.0,
            start: SimTime(6_000_000_000),
            end: SimTime(8_000_000_000),
        },
    );
    net.run_until(SimTime(12_000_000_000));

    println!(
        "raw detection records: {}",
        net.kernel.records.detections.len()
    );

    let mut tracker = IncidentTracker::new(IncidentConfig {
        merge_window: SimDuration::from_secs(5),
        clear_after: SimDuration::from_secs(3),
    });
    let incidents = tracker.ingest_all(&net.kernel.records.detections, net.kernel.now());
    println!("aggregated incidents: {}\n", incidents.len());
    for (i, inc) in incidents.iter().enumerate() {
        println!(
            "incident #{i}: switch {} port {} | opened t={:.2}s, last t={:.2}s | severity {:?}",
            inc.node,
            inc.port,
            inc.opened.as_secs_f64(),
            inc.last_seen.as_secs_f64(),
            inc.severity
        );
        if !inc.entries.is_empty() {
            println!(
                "    entries: {}",
                inc.entries
                    .iter()
                    .map(Prefix::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        if !inc.hash_paths.is_empty() {
            println!("    hash paths: {:?}", inc.hash_paths);
        }
        println!(
            "    {} detections, {}",
            inc.detections,
            match inc.cleared_at {
                Some(t) => format!("cleared at t={:.2}s", t.as_secs_f64()),
                None => "still open".to_string(),
            }
        );
    }

    // Sanity for the example itself.
    assert!(incidents.len() >= 2, "both gray failures become incidents");
    assert!(
        incidents
            .iter()
            .any(|i| i.severity >= Severity::UniformLoss),
        "the blackhole episode escalates severity"
    );
}
