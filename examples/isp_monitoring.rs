//! ISP-scale monitoring: the full FANcY system on realistic skewed traffic.
//!
//! Synthesizes a (scaled) CAIDA-like trace, gives the top prefixes
//! dedicated counters, leaves the long tail to the hash-based tree, breaks
//! a handful of prefixes across both classes, and prints the operator
//! report with hash paths resolved back to prefixes.
//!
//! ```sh
//! cargo run --release --example isp_monitoring
//! ```

use fancy::apps::{format_report, ScenarioError, ScenarioSpec};
use fancy::prelude::*;
use fancy::sim::{PrintSink, SimDuration};
use fancy::traffic::{paper_traces, synthesize};

fn main() -> Result<(), ScenarioError> {
    let duration = SimDuration::from_secs(10);
    // 1 % of the published equinix-chicago trace: ≈60 Mbps over ≈2500
    // /24 prefixes with Zipf-skewed popularity.
    let trace = synthesize(paper_traces()[0], duration, 0.01, 2024);
    println!(
        "synthesized trace: {} flows over {} prefixes",
        trace.flows.len(),
        trace.prefixes_by_rank.len()
    );

    // Allocation based on "historical data": dedicated counters for the
    // top 8 prefixes, best-effort tree for everything else.
    let dedicated = trace.top_prefixes(8);
    let mut sc = ScenarioSpec::linear()
        .seed(7)
        .flows(trace.flows.clone())
        .high_priority(dedicated.clone())
        .build()?;
    // Print a kernel-telemetry line after each run_until.
    sc.net
        .kernel
        .set_telemetry_sink(Box::new(PrintSink::new("isp_monitoring")));

    // Break one hot prefix (dedicated-covered), one mid-rank prefix
    // (tree-covered), and one cold prefix (tree-covered, little traffic).
    let victims = [
        ("hot/dedicated", trace.prefixes_by_rank[2], 0.5),
        ("warm/tree", trace.prefixes_by_rank[40], 0.5),
        ("cold/tree", trace.prefixes_by_rank[600], 0.5),
    ];
    let fail_at = SimTime(2_000_000_000);
    for (_, p, loss) in victims {
        sc.fail(GrayFailure::single_entry(p, loss, fail_at));
    }
    sc.net.run_until(SimTime::ZERO + duration);

    let (s1, monitored_port) = (sc.switches[0], sc.monitored_edge().port_a);
    let sw: &FancySwitch = sc.net.node(s1);
    let hasher = sw.tree_hasher(monitored_port);
    println!();
    for (label, p, _) in victims {
        let detected = if dedicated.contains(&p) {
            sc.net.kernel.records.first_entry_detection(p).is_some()
        } else {
            sw.tree_flags_entry(monitored_port, p)
        };
        let drops = sc
            .net
            .kernel
            .records
            .gray_drops
            .get(&p)
            .map_or(0, |s| s.count);
        println!("{label:>14} {p}: detected = {detected}, ground-truth drops = {drops}");
    }

    // The full operator report, hash paths resolved over the trace's
    // prefix universe.
    print!(
        "\n{}",
        format_report(
            "border-sw1",
            &sc.net.kernel.records,
            Some(hasher),
            Some(&trace.prefixes_by_rank),
        )
    );
    Ok(())
}
