//! The failure zoo: every Table 1 gray-failure class, detected.
//!
//! Recreates the paper's taxonomy of real Cisco/Juniper bugs — per-prefix
//! blackholes, partial drops, size-dependent drops, IP-ID-dependent drops,
//! line-card failures, CRC corruption, interface flaps — and shows which
//! FANcY mechanism catches each one and how fast.
//!
//! ```sh
//! cargo run --release --example failure_zoo
//! ```

use fancy::prelude::*;
use fancy::sim::{FailureMatcher, SimDuration};

struct Zoo {
    name: &'static str,
    matcher: FailureMatcher,
    drop_prob: f64,
}

fn main() -> Result<(), ScenarioError> {
    let entries: Vec<Prefix> = (0..300u32).map(|i| Prefix(0x0A_30_00 + i)).collect();
    let zoo = [
        Zoo {
            name: "prefix blackhole (Cisco CSCti14290)",
            matcher: FailureMatcher::Entries(vec![entries[3]]),
            drop_prob: 1.0,
        },
        Zoo {
            name: "partial per-prefix drops (Juniper PR1398407)",
            matcher: FailureMatcher::Entries(vec![entries[5]]),
            drop_prob: 0.25,
        },
        Zoo {
            name: "size-dependent drops (Cisco CSCtc33158)",
            matcher: FailureMatcher::PacketSize {
                min: 1400,
                max: 1500,
            },
            drop_prob: 1.0,
        },
        Zoo {
            name: "line-card failure (Cisco CSCea91692)",
            matcher: FailureMatcher::SourceRange {
                lo: 0x01_00_00_00,
                hi: 0x01_FF_FF_FF,
            },
            drop_prob: 1.0,
        },
        Zoo {
            name: "CRC corruption, random packets (Juniper PR1313977)",
            matcher: FailureMatcher::Uniform,
            drop_prob: 0.3,
        },
        Zoo {
            name: "interface flaps (Juniper PR1459698)",
            matcher: FailureMatcher::Flap {
                on: SimDuration::from_millis(60),
                off: SimDuration::from_millis(240),
            },
            drop_prob: 1.0,
        },
    ];

    println!(
        "{:<52} {:>9} {:>10}  mechanism",
        "failure", "detected", "latency"
    );
    for (i, z) in zoo.iter().enumerate() {
        // Fresh network per specimen: ≈300 entries of light traffic.
        let mut flows = Vec::new();
        for (k, &e) in entries.iter().enumerate() {
            for rep in 0..8u64 {
                flows.push(ScheduledFlow {
                    start: SimTime(rep * 1_000_000_000 + (k as u64 % 11) * 17_000_000),
                    dst: e.host(1),
                    cfg: FlowConfig::for_rate(500_000, 1.0),
                });
            }
        }
        flows.sort_by_key(|f| f.start);
        let mut sc = ScenarioSpec::linear()
            .seed(100 + i as u64)
            .flows(flows)
            .high_priority(entries[..8].to_vec())
            .build()?;
        let fail_at = SimTime(1_000_000_000);
        sc.fail(fancy::sim::GrayFailure {
            matcher: z.matcher.clone(),
            drop_prob: z.drop_prob,
            start: fail_at,
            end: SimTime::FAR_FUTURE,
        });
        sc.net.run_until(SimTime(8_000_000_000));

        let first = sc
            .net
            .kernel
            .records
            .detections
            .iter()
            .filter(|d| d.time >= fail_at)
            .min_by_key(|d| d.time);
        match first {
            Some(d) => println!(
                "{:<52} {:>9} {:>10}  {:?}",
                z.name,
                "yes",
                format!("{}", d.time.duration_since(fail_at)),
                d.detector
            ),
            None => println!("{:<52} {:>9} {:>10}  -", z.name, "NO", "-"),
        }
    }
    Ok(())
}
