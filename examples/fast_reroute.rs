//! Fine-grained fast rerouting (the paper's §6.1 Tofino case study).
//!
//! A FANcY switch monitors its primary path through a (faulty) link
//! switch; a backup path stands by. At t = 2 s the link switch starts
//! dropping 10 % of one prefix's packets. FANcY flags the entry and the
//! rerouting application steers *only that entry* onto the backup port —
//! the rest of the traffic never moves.
//!
//! ```sh
//! cargo run --release --example fast_reroute
//! ```

use fancy::apps::ScenarioSpec;
use fancy::prelude::*;
use fancy::sim::LinkConfig;
use fancy::sim::SimDuration;
use fancy::tcp::ReceiverHost;

fn main() -> Result<(), ScenarioError> {
    let victim = Prefix::from_addr(0x0A_00_07_00);
    let bystander = Prefix::from_addr(0x0A_00_08_00);
    let duration = SimDuration::from_secs(5);

    // 30 flows to the victim, 30 to an unaffected bystander prefix.
    let mut flows = Vec::new();
    for i in 0..30u64 {
        for &p in &[victim, bystander] {
            flows.push(ScheduledFlow {
                start: SimTime(i * 150_000_000),
                dst: p.host(1),
                cfg: FlowConfig::for_rate(4_000_000, 1.0),
            });
        }
    }
    flows.sort_by_key(|f| f.start);

    let mut cs = ScenarioSpec::case_study()
        .seed(7)
        .high_priority(vec![victim, bystander])
        .tree(TreeParams::tofino_default())
        .timers(TimerConfig {
            dedicated_interval: SimDuration::from_millis(250),
            zooming_interval: SimDuration::from_millis(200),
            ..TimerConfig::paper_default().for_link_delay(SimDuration::from_micros(20))
        })
        .flows(flows)
        .udp_background(1_000_000, 0x0B_00_00_01, duration)
        .core_link(LinkConfig::new(1_000_000_000, SimDuration::from_micros(5)))
        .probe(ThroughputProbe::for_entries(
            "victim",
            vec![victim],
            SimDuration::from_millis(250),
        ))
        .probe(ThroughputProbe::for_entries(
            "bystander",
            vec![bystander],
            SimDuration::from_millis(250),
        ))
        .build()?;

    let fail_at = SimTime(2_000_000_000);
    cs.fail(GrayFailure::single_entry(victim, 0.10, fail_at));
    cs.net.run_until(SimTime::ZERO + duration);

    let det = cs
        .net
        .kernel
        .records
        .first_entry_detection(victim)
        .expect("10% loss must be detected");
    println!(
        "victim {victim} detected {} after failure; rerouted to backup port",
        det.time.duration_since(fail_at)
    );

    let (s1, primary_port) = (cs.switches[0], cs.monitored_edge().port_a);
    let sw: &FancySwitch = cs.net.node(s1);
    println!(
        "reroute table consult: victim rerouted = {}, bystander rerouted = {}",
        sw.is_rerouted(primary_port, victim),
        sw.is_rerouted(primary_port, bystander),
    );
    assert!(sw.is_rerouted(primary_port, victim));
    assert!(
        !sw.is_rerouted(primary_port, bystander),
        "rerouting must be fine-grained: the bystander stays on the primary path"
    );
    println!("rerouted packets so far: {}", sw.stats.rerouted_packets);

    // Throughput per 250 ms bucket at the receiver (Mbps).
    let rx: &ReceiverHost = cs.net.node(cs.receivers[0]);
    println!("\n  t(s)   victim(Mbps)  bystander(Mbps)");
    let v = rx.probes[0].bps_series();
    let b = rx.probes[1].bps_series();
    for i in 0..v.len().max(b.len()) {
        println!(
            "  {:>4.2}   {:>12.2}  {:>15.2}",
            i as f64 * 0.25,
            v.get(i).copied().unwrap_or(0.0) / 1e6,
            b.get(i).copied().unwrap_or(0.0) / 1e6,
        );
    }
    Ok(())
}
