//! Quickstart: detect a gray failure in ~60 lines.
//!
//! Builds the canonical two-switch topology, injects a 10 % gray failure
//! on one destination prefix at t = 1 s, and prints FANcY's detections.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fancy::prelude::*;

fn main() -> Result<(), ScenarioError> {
    // The entry (destination /24 prefix) we will break.
    let victim = Prefix::from_addr(0x0A_00_07_00); // 10.0.7.0/24

    // Traffic: 40 one-second TCP flows of 2 Mbps toward the victim prefix,
    // starting 100 ms apart.
    let flows: Vec<ScheduledFlow> = (0..40)
        .map(|i| ScheduledFlow {
            start: SimTime(i * 100_000_000),
            dst: victim.host(1),
            cfg: FlowConfig::for_rate(2_000_000, 1.0),
        })
        .collect();

    // The §5 linear scenario: sender host — S1 — S2 — receiver, with FANcY
    // monitoring the S1→S2 link. The victim gets a dedicated counter.
    let mut sc = ScenarioSpec::linear()
        .seed(42)
        .flows(flows)
        .high_priority(vec![victim])
        .build()?;

    // A gray failure: from t = 1 s, drop 10 % of the victim's packets on
    // the wire — invisible to BFD, NetFlow sampling, or link counters.
    let fail_at = SimTime(1_000_000_000);
    sc.fail(GrayFailure::single_entry(victim, 0.10, fail_at));

    // Run five simulated seconds.
    sc.net.run_until(SimTime(5_000_000_000));

    // What did FANcY see?
    let detection = sc
        .net
        .kernel
        .records
        .first_entry_detection(victim)
        .expect("FANcY detects a 10% gray failure in well under a second");
    println!(
        "gray failure on {victim} detected {} after it started, via {:?}",
        detection.time.duration_since(fail_at),
        detection.detector,
    );

    // The switch's own output interface agrees (Fig. 1 of the paper):
    let sw: &FancySwitch = sc.net.node(sc.switches[0]);
    let monitored_port = sc.monitored_edge().port_a;
    println!(
        "switch output: flagged entries on port {} = {:?}",
        monitored_port,
        sw.flagged_entries(monitored_port)
    );

    // Full operator-facing report, with ground truth from the simulator.
    print!(
        "\n{}",
        fancy::apps::format_report("s1", &sc.net.kernel.records, None, None)
    );

    // The kernel keeps cheap telemetry counters while it runs:
    println!("\n{}", sc.net.kernel.telemetry_snapshot().summary());
    Ok(())
}
