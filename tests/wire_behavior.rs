//! Wire-level behavior, observed with trace taps: tags appear only on the
//! monitored hop (they are hop-local, §4.1/§5.3), control messages flow on
//! schedule, and ACKs travel the reverse path untagged.

use fancy::core::{FancyInput, FancySwitch, TimerConfig, TreeParams};
use fancy::net::FancyTag;
use fancy::prelude::*;
use fancy::sim::{LinkConfig, Network, SimDuration, TraceTap};
use fancy::tcp::{ReceiverHost, SenderHost};

/// host — S1 — tapM — S2 — tapE — receiver.
/// tapM sits on the monitored S1→S2 link, tapE on the egress edge.
fn tapped_net() -> (Network, usize, usize, Prefix) {
    let victim = Prefix(0x0A_88_01);
    let flows: Vec<ScheduledFlow> = (0..20u64)
        .map(|i| ScheduledFlow {
            start: SimTime(i * 100_000_000),
            dst: victim.host(1),
            cfg: FlowConfig::for_rate(2_000_000, 1.0),
        })
        .collect();
    let layout = FancyInput {
        high_priority: vec![victim],
        memory_bytes_per_port: 1 << 20,
        tree: TreeParams::paper_default(),
        timers: TimerConfig::paper_default().for_link_delay(SimDuration::from_millis(5)),
    }
    .translate()
    .unwrap();
    let mut net = Network::new(21);
    let host = net.add_node(Box::new(SenderHost::new(0x01_00_00_01, flows)));
    let mk_fib = || {
        let mut fib = Fib::new();
        fib.route(Prefix::from_addr(0x01_00_00_01), 0);
        fib.default_route(1);
        fib
    };
    let s1 = net.add_node(Box::new(FancySwitch::new(
        mk_fib(),
        layout.clone(),
        vec![1],
        1,
    )));
    let tap_mon = net.add_node(Box::new(TraceTap::new()));
    let s2 = net.add_node(Box::new(FancySwitch::new(mk_fib(), layout, Vec::new(), 2)));
    let tap_edge = net.add_node(Box::new(TraceTap::new()));
    let rx = net.add_node(Box::new(ReceiverHost::new()));
    let edge = LinkConfig::new(1_000_000_000, SimDuration::from_micros(10));
    let hop = LinkConfig::new(1_000_000_000, SimDuration::from_millis(5));
    net.connect(host, s1, edge); // s1 port 0
    net.connect(s1, tap_mon, hop); // s1 port 1 (monitored) — tap port 0
    net.connect(tap_mon, s2, hop); // tap port 1 — s2 port 0
    net.connect(s2, tap_edge, edge); // s2 port 1 — tapE port 0
    net.connect(tap_edge, rx, edge); // tapE port 1 — rx
    net.run_until(SimTime(3_000_000_000));
    (net, tap_mon, tap_edge, victim)
}

#[test]
fn tags_are_hop_local() {
    let (net, tap_mon, tap_edge, _victim) = tapped_net();
    let mon: &TraceTap = net.node(tap_mon);
    let edge: &TraceTap = net.node(tap_edge);

    // On the monitored link, data packets carry dedicated tags whenever a
    // session is counting — which is most of the time.
    let tagged = mon
        .forward()
        .filter(|c| c.kind == "data" && c.tag.is_some())
        .count();
    let data = mon.forward().filter(|c| c.kind == "data").count();
    assert!(data > 100, "enough data crossed: {data}");
    assert!(
        tagged * 10 > data * 5,
        "most data packets tagged on the monitored hop: {tagged}/{data}"
    );
    assert!(mon.forward().all(|c| match c.tag {
        Some(FancyTag::Dedicated { counter_id }) => counter_id == 0,
        Some(FancyTag::Tree { .. }) => true, // ACK-direction entries go best effort
        None => true,
    }));

    // Downstream of S2 the tag is gone: it was consumed at ingress.
    assert!(
        edge.forward().all(|c| c.tag.is_none()),
        "tags must be stripped after the monitored hop"
    );
    let edge_data = edge.forward().filter(|c| c.kind == "data").count();
    assert!(edge_data > 100, "traffic reached the receiver: {edge_data}");
}

#[test]
fn control_messages_flow_both_ways_on_the_monitored_link() {
    let (net, tap_mon, tap_edge, _victim) = tapped_net();
    let mon: &TraceTap = net.node(tap_mon);
    // Start/Stop travel forward; StartAck/Report travel backward.
    let fwd_ctrl = mon.forward().filter(|c| c.kind == "ctrl").count();
    let rev_ctrl = mon.reverse().filter(|c| c.kind == "ctrl").count();
    assert!(fwd_ctrl > 20, "forward control: {fwd_ctrl}");
    assert!(rev_ctrl > 20, "reverse control: {rev_ctrl}");
    // Roughly balanced: 2 forward (Start, Stop) vs 2 reverse (ACK, Report).
    let ratio = fwd_ctrl as f64 / rev_ctrl as f64;
    assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    // Control messages never leak past the FANcY pair.
    let edge: &TraceTap = net.node(tap_edge);
    assert_eq!(edge.forward().filter(|c| c.kind == "ctrl").count(), 0);

    // Tree reports are the big frames (5330 B + header); dedicated control
    // is minimum-size.
    let big = mon
        .reverse()
        .filter(|c| c.kind == "ctrl" && c.size > 5000)
        .count();
    assert!(big > 0, "tree reports present");
    let min = mon
        .reverse()
        .filter(|c| c.kind == "ctrl" && c.size == 64)
        .count();
    assert!(min > 0, "minimum-size control frames present");
}

#[test]
fn acks_travel_reverse_untagged() {
    let (net, tap_mon, _tap_edge, _victim) = tapped_net();
    let mon: &TraceTap = net.node(tap_mon);
    let acks = mon.reverse().filter(|c| c.kind == "ack").count();
    assert!(acks > 100, "ACK stream present: {acks}");
    // S2 does not monitor its S2→S1 direction in this setup, so ACKs are
    // untagged.
    assert!(mon
        .reverse()
        .filter(|c| c.kind == "ack")
        .all(|c| c.tag.is_none()));
}
