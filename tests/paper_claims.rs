//! Integration tests pinning the paper's headline claims, end to end.
//!
//! Each test builds a full packet-level scenario (hosts, TCP, switches,
//! FANcY) and asserts a quantitative claim from the paper: sub-second
//! detection, one-interval uniform classification, congestion immunity,
//! zero dedicated-counter false positives.

use fancy::apps::{ScenarioError, ScenarioSpec};
use fancy::prelude::*;
use fancy::sim::SimDuration;

fn steady_flows(entry: Prefix, rate: u64, n: u64, spacing_ms: u64) -> Vec<ScheduledFlow> {
    (0..n)
        .map(|i| ScheduledFlow {
            start: SimTime(i * spacing_ms * 1_000_000),
            dst: entry.host(1),
            cfg: FlowConfig::for_rate(rate, 1.0),
        })
        .collect()
}

#[test]
fn dedicated_detection_is_about_70ms_at_50ms_exchanges() -> Result<(), ScenarioError> {
    // Figure 7's headline: "the average detection time is ≈70 ms, which is
    // approximately the counters' exchange frequency (50 ms) plus counting
    // sessions' opening and closing" — on 10 ms links with high traffic.
    let entry = Prefix::from_addr(0x0A_00_01_00);
    let mut latencies = Vec::new();
    for seed in 0..5u64 {
        let mut sc = ScenarioSpec::linear()
            .seed(seed)
            .flows(steady_flows(entry, 5_000_000, 40, 100))
            .high_priority(vec![entry])
            .build()?;
        let fail_at = SimTime(1_000_000_000 + seed * 17_000_000);
        sc.fail(GrayFailure::single_entry(entry, 1.0, fail_at));
        sc.net.run_until(SimTime(4_000_000_000));
        let det = sc.net.kernel.records.first_entry_detection(entry).unwrap();
        latencies.push(det.time.duration_since(fail_at).as_secs_f64());
    }
    let avg = latencies.iter().sum::<f64>() / latencies.len() as f64;
    // Session cycle = 50 ms counting + 4 × 10 ms handshakes; detection lands
    // within roughly one cycle of the failure.
    assert!(
        (0.02..0.20).contains(&avg),
        "avg detection {avg}s, expected ≈0.07–0.1 s"
    );
    Ok(())
}

#[test]
fn tree_detection_is_about_three_zooming_intervals() -> Result<(), ScenarioError> {
    // Figure 9a: "single-entry failures are typically detected in 680 ms
    // ... three times the selected zooming speed (200 ms)".
    let entry = Prefix::from_addr(0x0A_00_02_00);
    let mut sc = ScenarioSpec::linear()
        .seed(3)
        .flows(steady_flows(entry, 5_000_000, 40, 100))
        .build()?;
    let fail_at = SimTime(1_000_000_000);
    sc.fail(GrayFailure::single_entry(entry, 1.0, fail_at));
    sc.net.run_until(SimTime(5_000_000_000));
    let det = sc
        .net
        .kernel
        .records
        .detections_by(DetectorKind::HashTree)
        .min_by_key(|d| d.time)
        .expect("tree must detect");
    let lat = det.time.duration_since(fail_at).as_secs_f64();
    assert!(
        (0.4..1.3).contains(&lat),
        "tree latency {lat}s, expected ≈0.68 s + waiting"
    );
    // And the reported path resolves to the failed entry.
    let sw: &FancySwitch = sc.net.node(sc.switches[0]);
    assert!(sw.tree_flags_entry(sc.monitored_edge().port_a, entry));
    Ok(())
}

#[test]
fn dedicated_counters_have_zero_false_positives() -> Result<(), ScenarioError> {
    // §5: "the false positive rate is always zero for any dedicated
    // counter". Run a lossless but busy, congested scenario and assert no
    // detection of any kind.
    let entries: Vec<Prefix> = (0..20u32).map(|i| Prefix(0x0A_00_40 + i)).collect();
    let mut flows = Vec::new();
    for &e in &entries {
        flows.extend(steady_flows(e, 3_000_000, 10, 300));
    }
    flows.sort_by_key(|f| f.start);
    // Narrow the monitored link to force congestion drops at the TM.
    let mut sc = ScenarioSpec::linear()
        .seed(9)
        .flows(flows)
        .high_priority(entries)
        .core_link(
            fancy::sim::LinkConfig::new(20_000_000, SimDuration::from_millis(10))
                .with_tm_capacity(40_000),
        )
        .build()?;
    sc.net.run_until(SimTime(6_000_000_000));
    assert!(
        sc.net.kernel.records.congestion_drops > 100,
        "scenario must be congested (got {})",
        sc.net.kernel.records.congestion_drops
    );
    assert_eq!(
        sc.net.kernel.records.detections.len(),
        0,
        "congestion must never be flagged as a gray failure: {:?}",
        sc.net.kernel.records.detections.first()
    );
    Ok(())
}

#[test]
fn blackholed_tcp_reduces_to_backoff_retransmissions() -> Result<(), ScenarioError> {
    // §5.2's key dynamic: "a hard failure immediately slows down all the
    // TCP flows, reducing all affected traffic to just retransmissions"
    // at exponentially increasing intervals. Verify the post-failure
    // packet rate collapses by orders of magnitude.
    let entry = Prefix::from_addr(0x0A_00_03_00);
    let mut sc = ScenarioSpec::linear()
        .seed(4)
        .flows(steady_flows(entry, 10_000_000, 10, 100))
        .build()?;
    let fail_at = SimTime(1_000_000_000);
    sc.fail(GrayFailure::single_entry(entry, 1.0, fail_at));
    sc.net.run_until(SimTime(9_000_000_000));
    let drops = &sc.net.kernel.records.gray_drops[&entry];
    // All traffic after the failure is dropped on the wire. The first
    // instants absorb the in-flight windows (10 flows × cwnd ≈ a few
    // hundred packets); after that only RTO retransmissions trickle at
    // exponentially growing intervals (~6 per flow over 8 s). Without
    // congestion collapse the 8 s × ~800 pps offered load would be ≈6400.
    assert!(
        drops.count < 1500,
        "post-blackhole sends should collapse to retransmissions, got {}",
        drops.count
    );
    assert!(drops.count > 10, "but some retransmissions must flow");
    // Retransmissions keep trickling until the end of the run (exponential
    // backoff, not silence).
    assert!(
        drops.last.unwrap() > SimTime(5_000_000_000),
        "backoff retransmissions should continue late into the run"
    );
    Ok(())
}

#[test]
fn detection_survives_failures_in_both_directions() -> Result<(), ScenarioError> {
    // The counting protocol must keep working when the *reverse* path also
    // drops control traffic (the strawman §4.1 fails exactly here).
    let entry = Prefix::from_addr(0x0A_00_04_00);
    let mut sc = ScenarioSpec::linear()
        .seed(5)
        .flows(steady_flows(entry, 2_000_000, 40, 100))
        .high_priority(vec![entry])
        .build()?;
    // Reverse-direction failure: inject from the far switch (s2).
    let (core_link, s2) = {
        let core = sc.monitored_edge();
        (core.link, core.b)
    };
    sc.net
        .kernel
        .add_failure(core_link, s2, GrayFailure::uniform(0.4, SimTime::ZERO));
    let fail_at = SimTime(1_500_000_000);
    sc.fail(GrayFailure::single_entry(entry, 0.5, fail_at));
    sc.net.run_until(SimTime(6_000_000_000));
    let det = sc
        .net
        .kernel
        .records
        .first_entry_detection(entry)
        .expect("detection must survive a 40% lossy reverse path");
    assert!(det.time >= fail_at);
    Ok(())
}

#[test]
fn whole_system_is_deterministic() {
    let run = |seed: u64| {
        let entry = Prefix::from_addr(0x0A_00_05_00);
        let mut sc = ScenarioSpec::linear()
            .seed(seed)
            .flows(steady_flows(entry, 1_000_000, 20, 200))
            .high_priority(vec![entry])
            .build()
            .expect("paper-default layout always fits");
        sc.fail(GrayFailure::single_entry(
            entry,
            0.3,
            SimTime(1_000_000_000),
        ));
        sc.net.run_until(SimTime(5_000_000_000));
        (
            sc.net.kernel.records.total_gray_drops(),
            sc.net.kernel.records.detections.len(),
            sc.net
                .kernel
                .records
                .first_entry_detection(entry)
                .map(|d| d.time),
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).0, run(8).0, "different seeds explore different runs");
}
