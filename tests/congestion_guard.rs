//! The partial-deployment congestion guard (footnote 2 of the paper).
//!
//! When FANcY runs between *remote* switches, congestion at an unmonitored
//! middle hop drops packets between the two counting points, which would be
//! misread as a gray failure. The guard polls queue-depth telemetry of the
//! watched links and discards measurements taken while any watched queue
//! ran long.

use fancy::core::{CongestionGuard, FancyInput, FancySwitch, TimerConfig, TreeParams};
use fancy::prelude::*;
use fancy::sim::{LinkConfig, Network, SimDuration};
use fancy::tcp::{ReceiverHost, SenderHost};

/// host — F1 — legacy (bottleneck) — F2 — receiver. Optionally injects a
/// genuine gray failure (drop fraction) on the F1→legacy hop at t = 2 s.
/// Returns (network, f1).
fn remote_pair(
    with_guard: bool,
    offered_bps: u64,
    gray: Option<f64>,
    seed: u64,
) -> (Network, usize) {
    let victim = Prefix(0x0A_77_01);
    let flows: Vec<ScheduledFlow> = (0..40u64)
        .map(|i| ScheduledFlow {
            start: SimTime(i * 100_000_000),
            dst: victim.host(1),
            cfg: FlowConfig::for_rate(offered_bps / 20, 1.0),
        })
        .collect();
    let layout = FancyInput {
        high_priority: vec![victim],
        memory_bytes_per_port: 1 << 20,
        tree: TreeParams::paper_default(),
        timers: TimerConfig::paper_default().for_link_delay(SimDuration::from_millis(10)),
    }
    .translate()
    .unwrap();

    const F1_ADDR: u32 = 0x0C_00_01_01;
    const F2_ADDR: u32 = 0x0C_00_02_01;
    let mut net = Network::new(seed);
    let host = net.add_node(Box::new(SenderHost::new(0x01_00_00_01, flows)));
    let mk_fib = || {
        let mut fib = Fib::new();
        fib.route(Prefix::from_addr(0x01_00_00_01), 0);
        fib.route(Prefix::from_addr(F1_ADDR), 0);
        fib.default_route(1);
        fib
    };
    let mut f1_node = FancySwitch::new(mk_fib(), layout.clone(), vec![1], 1);
    f1_node.addr = F1_ADDR;
    f1_node.control_dst.insert(1, F2_ADDR);
    let f1 = net.add_node(Box::new(f1_node));
    let legacy = net.add_node(Box::new(PlainSwitch::new(mk_fib())));
    let mut f2_node = FancySwitch::new(mk_fib(), layout, Vec::new(), 2);
    f2_node.addr = F2_ADDR;
    let f2 = net.add_node(Box::new(f2_node));
    let rx = net.add_node(Box::new(ReceiverHost::new()));

    let edge = LinkConfig::new(1_000_000_000, SimDuration::from_micros(10));
    let hop = LinkConfig::new(1_000_000_000, SimDuration::from_millis(5));
    // The legacy hop toward F2 is a bottleneck with a small queue.
    let bottleneck =
        LinkConfig::new(20_000_000, SimDuration::from_millis(5)).with_tm_capacity(15_000);
    net.connect(host, f1, edge);
    let l_f1 = net.connect(f1, legacy, hop);
    let bn = net.connect(legacy, f2, bottleneck);
    net.connect(f2, rx, edge);
    if let Some(p) = gray {
        net.kernel.add_failure(
            l_f1,
            f1,
            GrayFailure::single_entry(victim, p, SimTime(2_000_000_000)),
        );
    }

    if with_guard {
        let sw: &mut FancySwitch = net.node_mut(f1);
        sw.guards.insert(
            1,
            CongestionGuard {
                threshold_bytes: 8_000,
                window: SimDuration::from_millis(25),
                watched: vec![(bn, legacy)],
            },
        );
    }
    net.run_until(SimTime(6_000_000_000));
    (net, f1)
}

#[test]
fn unguarded_remote_pair_misreads_middle_hop_congestion() {
    // Offer 40 Mbps into a 20 Mbps bottleneck: heavy congestion drops
    // between the counting points look exactly like gray loss to an
    // unguarded remote pair.
    let (net, _f1) = remote_pair(false, 120_000_000, None, 9);
    assert!(
        net.kernel.records.congestion_drops > 50,
        "scenario must congest the middle hop"
    );
    assert!(
        !net.kernel.records.detections.is_empty(),
        "without the guard, middle-hop congestion is (mis)flagged"
    );
    assert_eq!(
        net.kernel.records.total_gray_drops(),
        0,
        "no real gray failure"
    );
}

#[test]
fn guard_discards_congestion_tainted_measurements() {
    let (net, f1) = remote_pair(true, 120_000_000, None, 9);
    assert!(net.kernel.records.congestion_drops > 50);
    let sw: &FancySwitch = net.node(f1);
    assert!(
        sw.stats.discarded_sessions > 0,
        "guard must discard tainted sessions"
    );
    let false_positives = net
        .kernel
        .records
        .detections
        .iter()
        .filter(|d| {
            matches!(
                d.scope,
                DetectionScope::Entry(_) | DetectionScope::HashPath(_)
            )
        })
        .count();
    assert_eq!(
        false_positives,
        0,
        "guarded pair must not flag congestion: {:?}",
        net.kernel.records.detections.first()
    );
}

#[test]
fn guard_does_not_block_detection_of_a_real_gray_failure() {
    // Light offered load (no congestion) + a genuine 30% gray failure:
    // the guard stays out of the way and the failure is still localized.
    let victim = Prefix(0x0A_77_01);
    let (net, f1) = remote_pair(true, 5_000_000, Some(0.3), 10);
    let sw: &FancySwitch = net.node(f1);
    assert_eq!(
        sw.stats.discarded_sessions, 0,
        "no congestion → nothing discarded"
    );
    let det = net
        .kernel
        .records
        .first_entry_detection(victim)
        .expect("real gray failure must still be detected with the guard on");
    assert!(det.time >= SimTime(2_000_000_000));
}

#[test]
fn guarded_clean_run_is_silent() {
    let (net, f1) = remote_pair(true, 5_000_000, None, 11);
    let sw: &FancySwitch = net.node(f1);
    assert_eq!(sw.stats.discarded_sessions, 0);
    assert!(net.kernel.records.detections.is_empty());
}
