//! Integration tests of FANcY's operator interface and memory contracts,
//! cross-checked against the analytical formulas.

use fancy::analysis::tree_math;
use fancy::core::{ConfigError, FancyInput, TimerConfig, TreeParams};
use fancy::hw::fancy_prog;
use fancy::net::Prefix;

fn entries(n: u32) -> Vec<Prefix> {
    (0..n).map(Prefix).collect()
}

#[test]
fn paper_input_translates_to_paper_layout() {
    // §5: 64-port switch, 1.25 MB (20 KB/port), 500 high-priority entries
    // → 500 dedicated counters and a d=3, k=2, w=190 tree.
    let layout = FancyInput::paper_default(entries(500)).translate().unwrap();
    assert_eq!(layout.high_priority.len(), 500);
    assert_eq!(
        (layout.tree.depth, layout.tree.split, layout.tree.width),
        (3, 2, 190)
    );
    // Whole-switch total (×64 ports) stays within the 1.25 MB budget.
    let total_bytes = layout.total_bits() * 64 / 8;
    assert!(total_bytes <= 1_310_720, "total {total_bytes} B");
}

#[test]
fn interface_error_contract() {
    // Fig. 1 / §4.3: "The system returns an error, if the set of
    // high-priority entries cannot be supported with the memory budget."
    let mut input = FancyInput::paper_default(entries(500));
    input.memory_bytes_per_port = 1024; // 8 Kbit: not even the counters fit
    assert!(matches!(
        input.translate(),
        Err(ConfigError::HighPriorityExceedsBudget { .. })
    ));

    let mut input = FancyInput::paper_default(entries(0));
    input.memory_bytes_per_port = 64; // tree can't fit either
    assert!(matches!(
        input.translate(),
        Err(ConfigError::TreeExceedsBudget { .. })
    ));
}

#[test]
fn all_entries_high_priority_is_supported() {
    // §1: "If operators want to monitor a more limited set of entries,
    // they can also specify all entries as high priority."
    let mut input = FancyInput::paper_default(entries(1024));
    input.tree = TreeParams {
        width: 4,
        depth: 1,
        split: 1,
        pipelined: false,
    };
    let layout = input.translate().unwrap();
    assert_eq!(layout.high_priority.len(), 1024);
    assert!(layout.dedicated_id(Prefix(1023)).is_some());
}

#[test]
fn engine_slots_match_analytical_node_count() {
    // The zoom engine's slot provisioning equals Appendix A.3's Eq. 3 for
    // pipelined trees.
    for (k, d) in [(2u8, 3u8), (3, 3), (2, 4), (1, 3)] {
        let params = TreeParams {
            width: 16,
            depth: d,
            split: k,
            pipelined: true,
        };
        assert_eq!(
            params.slot_count() as u64,
            tree_math::nodes(k, d, true),
            "k={k} d={d}"
        );
    }
}

#[test]
fn config_memory_matches_appendix_formula_plus_protocol_state() {
    // TreeParams::memory_bits = Eq. 3 counter memory + 88 bits/node of
    // protocol state (§4.3).
    let p = TreeParams::paper_default();
    let counters = tree_math::memory_bits(190, 2, 3, true);
    assert_eq!(p.memory_bits(), counters + 88 * 7);
}

#[test]
fn hw_model_and_core_agree_on_output_structure_sizes() {
    // The Tofino program's reroute registers and fancy-core's output
    // structures are the same bits.
    let hw_bits = fancy_prog::reroute_bits(32, 512, 100_000);
    let core_bits: u64 = (0..32)
        .map(|_| fancy::core::FlagArray::new(512).memory_bits())
        .sum::<u64>()
        + fancy::core::OutputBloom::tofino_default(0).memory_bits();
    assert_eq!(hw_bits, core_bits);
}

#[test]
fn timers_scale_with_link_delay() {
    let slow =
        TimerConfig::paper_default().for_link_delay(fancy::sim::SimDuration::from_millis(10));
    let fast = TimerConfig::paper_default().for_link_delay(fancy::sim::SimDuration::from_millis(1));
    assert!(slow.trtx > fast.trtx);
    // T_rtx must exceed one RTT or every session would retransmit.
    assert!(slow.trtx > fancy::sim::SimDuration::from_millis(20));
}
