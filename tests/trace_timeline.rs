//! Flight-recorder timeline regressions.
//!
//! Two cross-checks tie the trace pipeline to ground truth:
//!
//! 1. the detection time extracted from the trace equals the kernel's own
//!    `DetectionRecord`, and the onset→detect latency respects the
//!    hand-computed FSM epoch bound for dedicated counters;
//! 2. a hash-tree (Figure 8 style) zooming trace reproduces the
//!    `fancy_analysis::speed` closed-form detection latency.

use fancy::analysis::{speed, timeline::TimelineReport};
use fancy::prelude::*;

/// Capture a full trace of a linear scenario with a gray failure on
/// `victim`, returning (trace events, detection records, timer config).
fn traced_linear(
    victim: Prefix,
    dedicated: bool,
    loss: f64,
    fail_at: SimTime,
    until: SimTime,
    n_flows: u64,
) -> (
    Vec<TraceEvent>,
    Vec<fancy::sim::DetectionRecord>,
    fancy::core::TimerConfig,
) {
    let flows: Vec<ScheduledFlow> = (0..n_flows)
        .map(|i| ScheduledFlow {
            start: SimTime(i * 20_000_000),
            dst: victim.host(1),
            cfg: FlowConfig::for_rate(4_000_000, 4.0),
        })
        .collect();
    let high_priority = if dedicated { vec![victim] } else { Vec::new() };
    let mut sc = ScenarioSpec::linear()
        .seed(11)
        .flows(flows)
        .high_priority(high_priority)
        .build()
        .expect("linear scenario builds");
    let timers = sc.layout.timers;
    let recorder = SharedRecorder::new(1 << 20);
    sc.net.kernel.set_tracer(Box::new(recorder.clone()));
    sc.fail(GrayFailure::single_entry(victim, loss, fail_at));
    sc.net.run_until(until);
    assert_eq!(recorder.dropped(), 0, "ring sized for the whole trace");
    (
        recorder.snapshot(),
        sc.net.kernel.records.detections.clone(),
        timers,
    )
}

#[test]
fn dedicated_detection_latency_matches_records_and_epoch_bound() {
    // 3-node linear path (sender — S1 — S2 — receiver), seeded 1 % gray
    // drop on a dedicated entry.
    let victim = Prefix::from_addr(0x0A_00_07_00);
    let (events, records, timers) = traced_linear(
        victim,
        true,
        0.01,
        SimTime(500_000_000),
        SimTime(2_000_000_000),
        20,
    );
    let report = TimelineReport::from_events(&events);

    // The trace and the kernel agree on when the dedicated counter fired.
    let rec = records
        .iter()
        .find(|r| r.detector == DetectorKind::DedicatedCounter)
        .expect("dedicated counter detects a 1% failure");
    let trace_detect = report
        .detections
        .iter()
        .find(|d| d.detector == "dedicated")
        .expect("trace carries the detection");
    assert_eq!(trace_detect.t_ns, rec.time.as_nanos());

    // Onset in the trace is the first *actual* gray drop, so the
    // detection latency excludes the wait-for-first-loss term and is
    // bounded by the counting epoch alone. One epoch is
    //   session open (Start + StartAck = 2·delay)
    // + counting interval
    // + session close (Stop + twait + Report = 2·delay + twait),
    // i.e. interval + 4·delay + twait. A drop landing during open/close
    // (counters idle) is only caught one epoch later, hence the factor 2.
    let delay_s = 0.010; // the builder's paper-default core link
    let epoch_s = timers.dedicated_interval.as_nanos() as f64 / 1e9
        + 4.0 * delay_s
        + timers.twait.as_nanos() as f64 / 1e9;
    let latency = report
        .detection_latency_secs()
        .expect("onset and detection are both in the trace");
    assert!(latency > 0.0, "detection cannot precede onset");
    assert!(
        latency <= 2.0 * epoch_s,
        "latency {latency:.4}s exceeds the 2-epoch bound {:.4}s",
        2.0 * epoch_s
    );
    // And the closed-form expectation is inside the same bound, so model
    // and measurement describe the same mechanism.
    let model = speed::dedicated_secs(timers.dedicated_interval.as_nanos() as f64 / 1e9, delay_s);
    assert!(model <= 2.0 * epoch_s);
}

#[test]
fn zooming_trace_reproduces_speed_model_latency() {
    // Figure 8 setup: the victim has no dedicated counter, so the hash
    // tree must zoom down to a leaf — depth sessions at the zooming
    // interval. High loss keeps every session mismatching.
    let victim = Prefix::from_addr(0x0A_00_09_00);
    let (events, records, timers) = traced_linear(
        victim,
        false,
        0.5,
        SimTime(400_000_000),
        SimTime(4_000_000_000),
        20,
    );
    let report = TimelineReport::from_events(&events);

    let rec = records
        .iter()
        .find(|r| r.detector == DetectorKind::HashTree)
        .expect("tree detects a 50% single-entry failure");
    let trace_detect = report
        .detections
        .iter()
        .find(|d| d.detector == "tree")
        .expect("trace carries the tree detection");
    assert_eq!(trace_detect.t_ns, rec.time.as_nanos());

    // Zoom steps are the first-suspicion signal and precede detection.
    let suspicion = report.first_suspicion_ns.expect("zooming leaves steps");
    assert!(suspicion <= trace_detect.t_ns);

    // The measured latency reproduces speed::tree_secs within a factor
    // band (the model is an expectation; one run sits around it).
    let delay_s = 0.010;
    let depth = TreeParams::paper_default().depth;
    let model = speed::tree_secs(
        depth,
        timers.zooming_interval.as_nanos() as f64 / 1e9,
        delay_s,
    );
    let measured = report.detection_latency_secs().expect("chain complete");
    assert!(
        measured >= 0.5 * model && measured <= 1.5 * model,
        "measured {measured:.3}s outside [{:.3}, {:.3}]s around the model",
        0.5 * model,
        1.5 * model
    );
}
