//! Property-based tests of the counting protocol and core data structures.
//!
//! These drive the *pure* components (FSMs, zoom engine, IBFs, wire
//! formats) through randomized schedules with proptest, checking the
//! invariants the system-level results rest on.

use proptest::prelude::*;

use fancy::baselines::LossRadarMeter;
use fancy::core::fsm::{ReceiverAction, SenderAction};
use fancy::core::{ReceiverFsm, SenderFsm, TimerConfig, TreeParams, ZoomEngine};
use fancy::net::{ControlBody, ControlMessage, FancyTag, Prefix, SessionKind};
use fancy::sim::SimDuration;

// ---------------------------------------------------------------------
// Wire formats: anything we emit parses back identically.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn control_messages_roundtrip(
        kind in prop_oneof![
            (0u16..512).prop_map(|counter_id| SessionKind::Dedicated { counter_id }),
            Just(SessionKind::Tree),
        ],
        session_id in any::<u32>(),
        body in prop_oneof![
            Just(ControlBody::Start),
            Just(ControlBody::StartAck),
            Just(ControlBody::Stop),
            proptest::collection::vec(any::<u32>(), 0..2000).prop_map(ControlBody::Report),
        ],
    ) {
        let msg = ControlMessage { kind, session_id, body };
        let bytes = msg.to_bytes();
        prop_assert_eq!(ControlMessage::parse(&bytes).unwrap(), msg);
    }

    #[test]
    fn tags_roundtrip(dedicated in any::<bool>(), a in 0u16..0x8000, slot in 0u8..0x80, idx in any::<u8>()) {
        let tag = if dedicated {
            FancyTag::Dedicated { counter_id: a }
        } else {
            FancyTag::Tree { slot, index: idx }
        };
        let mut buf = [0u8; 2];
        tag.emit(&mut buf);
        prop_assert_eq!(FancyTag::parse(&buf).unwrap(), tag);
    }

    #[test]
    fn truncated_control_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = ControlMessage::parse(&bytes); // must not panic
    }
}

// ---------------------------------------------------------------------
// FSM pair over a lossy channel: sessions always make progress, and a
// delivered report always belongs to the current session.
// ---------------------------------------------------------------------

/// Simulate the sender/receiver FSM pair over a channel that drops
/// messages per `drop_pattern`. Timer events fire in order. Returns the
/// number of completed sessions and link-failure declarations.
fn run_fsm_pair(drop_pattern: &[bool], rounds: usize) -> (u64, u64) {
    let timers = TimerConfig::paper_default();
    let mut sender = SenderFsm::new(SimDuration::from_millis(50), timers);
    let mut receiver = ReceiverFsm::new(timers);
    let mut drop_iter = drop_pattern.iter().cycle();
    let mut pending_sender: Vec<SenderAction> = sender.open();
    let mut to_receiver: Vec<(u32, ControlBody)> = Vec::new();
    let mut to_sender: Vec<(u32, ControlBody)> = Vec::new();
    let mut sender_timer: Option<u64> = None;
    let mut receiver_timer: Option<u64> = None;
    let mut cached_report: Vec<u32> = vec![0];

    for _ in 0..rounds {
        // Execute pending sender actions.
        for a in std::mem::take(&mut pending_sender) {
            match a {
                SenderAction::Send(body) if !*drop_iter.next().unwrap() => {
                    to_receiver.push((sender.session_id, body));
                }
                SenderAction::ArmTimer { epoch, .. } => sender_timer = Some(epoch),
                _ => {}
            }
        }
        // Deliver to receiver.
        let mut r_actions = Vec::new();
        for (sid, body) in std::mem::take(&mut to_receiver) {
            r_actions.extend(receiver.on_message(sid, &body));
        }
        for a in r_actions {
            match a {
                ReceiverAction::Send(body) => {
                    if !*drop_iter.next().unwrap() {
                        to_sender.push((receiver.session_id, body));
                    }
                }
                ReceiverAction::EmitReport | ReceiverAction::ResendReport => {
                    if !*drop_iter.next().unwrap() {
                        to_sender.push((
                            receiver.session_id,
                            ControlBody::Report(cached_report.clone()),
                        ));
                    }
                }
                ReceiverAction::ArmTimer { epoch, .. } => receiver_timer = Some(epoch),
                ReceiverAction::ResetCounters => cached_report = vec![0],
            }
        }
        // Deliver to sender.
        for (sid, body) in std::mem::take(&mut to_sender) {
            let acts = sender.on_message(sid, &body);
            let reopened = acts.iter().any(|a| matches!(a, SenderAction::Deliver(_)));
            pending_sender.extend(acts);
            if reopened {
                pending_sender.extend(sender.open());
            }
        }
        // Fire timers (receiver first: T_wait is short).
        if let Some(e) = receiver_timer.take() {
            let acts = receiver.on_timer(e);
            for a in acts {
                match a {
                    ReceiverAction::EmitReport | ReceiverAction::ResendReport => {
                        if !*drop_iter.next().unwrap() {
                            to_sender.push((
                                receiver.session_id,
                                ControlBody::Report(cached_report.clone()),
                            ));
                        }
                    }
                    ReceiverAction::ArmTimer { epoch, .. } => receiver_timer = Some(epoch),
                    ReceiverAction::Send(body) => {
                        if !*drop_iter.next().unwrap() {
                            to_sender.push((receiver.session_id, body));
                        }
                    }
                    ReceiverAction::ResetCounters => cached_report = vec![0],
                }
            }
        }
        if let Some(e) = sender_timer.take() {
            pending_sender.extend(sender.on_timer(e));
        }
        // Late deliveries next round.
    }
    (sender.sessions_completed, sender.link_failures)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fsm_pair_makes_progress_under_partial_loss(
        pattern in proptest::collection::vec(any::<bool>(), 1..32),
    ) {
        // Unless the pattern drops everything, sessions eventually
        // complete; if it does drop everything, link failures are declared
        // instead. Either way the pair never wedges silently.
        let all_dropped = pattern.iter().all(|&d| d);
        let (completed, failures) = run_fsm_pair(&pattern, 400);
        if all_dropped {
            prop_assert!(failures > 0, "no progress and no failure declared");
            prop_assert_eq!(completed, 0);
        } else {
            prop_assert!(
                completed > 0 || failures > 0,
                "pair wedged: 0 sessions, 0 failures"
            );
        }
    }

    #[test]
    fn lossless_fsm_pair_completes_many_sessions(rounds in 50usize..300) {
        let (completed, failures) = run_fsm_pair(&[false], rounds);
        prop_assert_eq!(failures, 0);
        // Each session takes a handful of rounds in this driver.
        prop_assert!(completed as usize >= rounds / 8, "completed {}", completed);
    }
}

// ---------------------------------------------------------------------
// Zoom engine: counting conservation and detection soundness.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lossless_sessions_never_report(
        entries in proptest::collection::vec(0u32..100_000, 1..200),
        width in 4u16..64,
        depth in 1u8..4,
        split in 1u8..3,
    ) {
        let params = TreeParams { width, depth, split, pipelined: true };
        let mut engine = ZoomEngine::new(params, 1234);
        for _ in 0..4 {
            engine.begin_session();
            let w = usize::from(width);
            let mut remote = vec![0u32; engine.slot_count() * w];
            for &e in &entries {
                let FancyTag::Tree { slot, index } = engine.tag_and_count(Prefix(e)) else {
                    unreachable!()
                };
                remote[usize::from(slot) * w + usize::from(index)] += 1;
            }
            let outcomes = engine.end_session(&remote);
            prop_assert!(outcomes.is_empty(), "lossless session reported {outcomes:?}");
        }
    }

    #[test]
    fn reported_paths_always_contain_a_failed_entry(
        entries in proptest::collection::vec(0u32..100_000, 20..150),
        victim_idx in 0usize..19,
    ) {
        let params = TreeParams { width: 16, depth: 3, split: 2, pipelined: true };
        let mut engine = ZoomEngine::new(params, 99);
        let victim = Prefix(entries[victim_idx]);
        for _ in 0..6 {
            engine.begin_session();
            let w = 16usize;
            let mut remote = vec![0u32; engine.slot_count() * w];
            for &e in &entries {
                for _ in 0..5 {
                    let FancyTag::Tree { slot, index } = engine.tag_and_count(Prefix(e)) else {
                        unreachable!()
                    };
                    if Prefix(e) != victim {
                        remote[usize::from(slot) * w + usize::from(index)] += 1;
                    }
                }
            }
            for o in engine.end_session(&remote) {
                if let fancy::core::ZoomOutcome::LeafFailure { path, .. } = o {
                    // Soundness: the victim's hash path prefix-matches the
                    // reported path (collisions may add entries, never
                    // remove the true one... unless another entry shares
                    // the leaf — then the report still includes a path that
                    // the victim maps to).
                    prop_assert!(
                        engine.hasher().matches_prefix(victim, &path),
                        "reported path {path:?} does not match the only lossy entry"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// LossRadar IBF: the decoded difference is exactly the dropped set.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ibf_decodes_exact_difference(
        total in 100u64..2000,
        lost in proptest::collection::btree_set(0u64..2000, 0..40),
    ) {
        let mut m = LossRadarMeter::new(512, 3, 7);
        for k in 0..total {
            m.on_upstream(k);
            if !lost.contains(&k) {
                m.on_downstream(k);
            }
        }
        let mut got = m.rotate().expect("512 cells fit ≤40 losses");
        got.sort_unstable();
        let want: Vec<u64> = lost.into_iter().filter(|&k| k < total).collect();
        prop_assert_eq!(got, want);
    }
}
