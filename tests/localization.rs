//! Localization tests: FANcY must identify *which link* (and which
//! entries) a gray failure lives on — the property that separates it from
//! a mere loss detector ("By localizing we mean identifying both the
//! switch port suffering from a gray failure and the affected traffic").

use std::any::Any;

use fancy::core::{FancyInput, FancySwitch, TimerConfig, TreeParams};
use fancy::prelude::*;
use fancy::sim::{LinkConfig, Network, SimDuration};
use fancy::tcp::{ReceiverHost, SenderHost};

/// host — S1 — S2 — S3 — receiver, FANcY everywhere, failure on exactly
/// one inter-switch link. Only the upstream switch of *that* link must
/// report, localizing the failure to its port.
fn chain(failure_on_second_hop: bool) -> (Network, usize, usize, Vec<Prefix>) {
    let victims: Vec<Prefix> = (0..3u32).map(|i| Prefix(0x0A_44_00 + i)).collect();
    let mut flows = Vec::new();
    for (k, v) in victims.iter().enumerate() {
        for i in 0..30u64 {
            flows.push(ScheduledFlow {
                start: SimTime(i * 150_000_000 + k as u64 * 31_000_000),
                dst: v.host(1),
                cfg: FlowConfig::for_rate(2_000_000, 1.0),
            });
        }
    }
    flows.sort_by_key(|f| f.start);

    let layout = FancyInput {
        high_priority: victims.clone(),
        memory_bytes_per_port: 1 << 20,
        tree: TreeParams::paper_default(),
        timers: TimerConfig::paper_default().for_link_delay(SimDuration::from_millis(5)),
    }
    .translate()
    .unwrap();

    let mut net = Network::new(33);
    let host = net.add_node(Box::new(SenderHost::new(0x01_00_00_01, flows)));
    let mk_fib = || {
        let mut fib = Fib::new();
        fib.route(Prefix::from_addr(0x01_00_00_01), 0);
        fib.default_route(1);
        fib
    };
    let s1 = net.add_node(Box::new(FancySwitch::new(
        mk_fib(),
        layout.clone(),
        vec![1],
        1,
    )));
    let s2 = net.add_node(Box::new(FancySwitch::new(
        mk_fib(),
        layout.clone(),
        vec![1],
        2,
    )));
    let s3 = net.add_node(Box::new(FancySwitch::new(mk_fib(), layout, Vec::new(), 3)));
    let rx = net.add_node(Box::new(ReceiverHost::new()));

    let edge = LinkConfig::new(10_000_000_000, SimDuration::from_micros(10));
    let hop = LinkConfig::new(10_000_000_000, SimDuration::from_millis(5));
    net.connect(host, s1, edge);
    let l12 = net.connect(s1, s2, hop);
    let l23 = net.connect(s2, s3, hop);
    net.connect(s3, rx, edge);

    let (link, from) = if failure_on_second_hop {
        (l23, s2)
    } else {
        (l12, s1)
    };
    net.kernel.add_failure(
        link,
        from,
        GrayFailure::single_entry(victims[1], 0.4, SimTime(1_000_000_000)),
    );
    net.run_until(SimTime(5_000_000_000));
    (net, s1, s2, victims.into_iter().collect())
}

#[test]
fn failure_on_first_hop_reported_by_s1_only() {
    let (net, s1, s2, victims) = chain(false);
    let det: Vec<_> = net
        .kernel
        .records
        .detections
        .iter()
        .filter(|d| matches!(d.scope, DetectionScope::Entry(_)))
        .collect();
    assert!(!det.is_empty(), "failure must be detected");
    assert!(
        det.iter().all(|d| d.node == s1),
        "only the upstream of the failing link reports: {det:?}"
    );
    let _ = s2;
    // And only the failed entry is implicated.
    for d in &det {
        assert_eq!(d.scope, DetectionScope::Entry(victims[1]));
    }
}

#[test]
fn failure_on_second_hop_reported_by_s2_only() {
    let (net, s1, s2, victims) = chain(true);
    let det: Vec<_> = net
        .kernel
        .records
        .detections
        .iter()
        .filter(|d| matches!(d.scope, DetectionScope::Entry(_)))
        .collect();
    assert!(!det.is_empty(), "failure must be detected");
    assert!(
        det.iter().all(|d| d.node == s2),
        "localization must pin the second hop: {det:?}"
    );
    let _ = s1;
    for d in &det {
        assert_eq!(d.scope, DetectionScope::Entry(victims[1]));
    }
}

#[test]
fn two_simultaneous_failures_on_different_links_both_localized() {
    // Independent failures on hops 1 and 2, different entries: each
    // upstream flags exactly its own.
    let victims: Vec<Prefix> = (0..4u32).map(|i| Prefix(0x0A_55_00 + i)).collect();
    let mut flows = Vec::new();
    for (k, v) in victims.iter().enumerate() {
        for i in 0..30u64 {
            flows.push(ScheduledFlow {
                start: SimTime(i * 150_000_000 + k as u64 * 17_000_000),
                dst: v.host(1),
                cfg: FlowConfig::for_rate(2_000_000, 1.0),
            });
        }
    }
    flows.sort_by_key(|f| f.start);
    let layout = FancyInput {
        high_priority: victims.clone(),
        memory_bytes_per_port: 1 << 20,
        tree: TreeParams::paper_default(),
        timers: TimerConfig::paper_default().for_link_delay(SimDuration::from_millis(5)),
    }
    .translate()
    .unwrap();
    let mut net = Network::new(44);
    let host = net.add_node(Box::new(SenderHost::new(0x01_00_00_01, flows)));
    let mk_fib = || {
        let mut fib = Fib::new();
        fib.route(Prefix::from_addr(0x01_00_00_01), 0);
        fib.default_route(1);
        fib
    };
    let s1 = net.add_node(Box::new(FancySwitch::new(
        mk_fib(),
        layout.clone(),
        vec![1],
        1,
    )));
    let s2 = net.add_node(Box::new(FancySwitch::new(
        mk_fib(),
        layout.clone(),
        vec![1],
        2,
    )));
    let s3 = net.add_node(Box::new(FancySwitch::new(mk_fib(), layout, Vec::new(), 3)));
    let rx = net.add_node(Box::new(ReceiverHost::new()));
    let edge = LinkConfig::new(10_000_000_000, SimDuration::from_micros(10));
    let hop = LinkConfig::new(10_000_000_000, SimDuration::from_millis(5));
    net.connect(host, s1, edge);
    let l12 = net.connect(s1, s2, hop);
    let l23 = net.connect(s2, s3, hop);
    net.connect(s3, rx, edge);
    net.kernel.add_failure(
        l12,
        s1,
        GrayFailure::single_entry(victims[0], 0.5, SimTime(1_000_000_000)),
    );
    net.kernel.add_failure(
        l23,
        s2,
        GrayFailure::single_entry(victims[2], 0.5, SimTime(1_200_000_000)),
    );
    net.run_until(SimTime(5_000_000_000));

    let sw1: &FancySwitch = net.node(s1);
    let sw2: &FancySwitch = net.node(s2);
    assert_eq!(sw1.flagged_entries(1), vec![victims[0]]);
    assert_eq!(sw2.flagged_entries(1), vec![victims[2]]);
    // Downcast sanity (the nodes really are FANcY switches).
    let any1: &dyn Any = sw1;
    assert!(any1.downcast_ref::<FancySwitch>().is_some());
}
