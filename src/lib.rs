//! # fancy — a Rust reproduction of FANcY (SIGCOMM 2022)
//!
//! *FAst In-Network GraY Failure Detection for ISPs* (Costa Molero,
//! Vissicchio, Vanbever — SIGCOMM '22) detects and localizes *gray
//! failures* — hardware malfunctions that silently drop a subset of
//! traffic — by letting neighboring switches synchronize packet counters
//! through a lightweight stop-and-wait protocol, with a zoomable
//! hash-based tree covering the entries that don't get a dedicated
//! counter.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`fancy_core`] | the FANcY system: protocol FSMs, dedicated counters, hash trees + zooming, output structures, the switch |
//! | [`fancy_sim`] | deterministic packet-level simulator (ns-3 substitute) with gray-failure injection |
//! | [`fancy_tcp`] | closed-loop TCP flow model and host nodes |
//! | [`fancy_traffic`] | §5 workloads: entry-size grids, Zipf skew, CAIDA-like traces |
//! | [`fancy_baselines`] | LossRadar (IBFs), NetSeer, Blink, simple designs |
//! | [`fancy_hw`] | Tofino-class resource model (Table 4, Appendix B) |
//! | [`fancy_analysis`] | closed-form models (Appendix A, Table 2, Figure 2, §5.3) |
//! | [`fancy_topo`] | ISP-scale topology layer: builders, generators, deterministic ECMP routes, SPIDER backup plans |
//! | [`fancy_apps`] | the unified `ScenarioSpec` builder, fast-reroute scenarios and operator reporting |
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `bench`
//! crate for the harnesses that regenerate every table and figure of the
//! paper.

pub use fancy_analysis as analysis;
pub use fancy_apps as apps;
pub use fancy_baselines as baselines;
pub use fancy_core as core;
pub use fancy_hw as hw;
pub use fancy_net as net;
pub use fancy_sim as sim;
pub use fancy_tcp as tcp;
pub use fancy_topo as topo;
pub use fancy_traffic as traffic;

/// Commonly used items across the workspace, in one import.
pub mod prelude {
    pub use fancy_apps::{
        case_study, linear, service_prefix, switch_src_prefix, uniform_pair_flows, CaseStudyConfig,
        LinearConfig, LinearConfigBuilder, PairFlow, Scenario, ScenarioError, ScenarioSpec,
    };
    pub use fancy_core::prelude::*;
    pub use fancy_net::{ControlMessage, FancyTag, Prefix};
    pub use fancy_sim::prelude::*;
    pub use fancy_tcp::{FlowConfig, ReceiverHost, ScheduledFlow, SenderHost, ThroughputProbe};
    pub use fancy_topo::{
        fat_tree, isp_backbone, BackupPlan, LinkSpec, Routes, Topology, TopologyBuilder,
    };
    pub use fancy_traffic::{paper_grid, paper_loss_rates, EntrySize};
}
