#!/usr/bin/env bash
# Tier-1 gate, fully offline (all deps are vendored path crates; see
# .cargo/config.toml). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --workspace --release

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== trace-report smoke (JSONL round-trip, fails on schema drift) =="
cargo run -q --release --example trace_report

echo "ci.sh: all green"
