#!/usr/bin/env bash
# Tier-1 gate, fully offline (all deps are vendored path crates; see
# .cargo/config.toml). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt (check only) =="
cargo fmt --all --check

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --workspace --release

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== benches compile =="
cargo build --benches --release --workspace

echo "== BENCH_sim.json refresh (kernel hot-path before/after numbers) =="
# Also enforces the zero-allocation steady-state scheduler claim: the
# bench asserts zero allocs per event and exits non-zero otherwise.
cargo bench -p fancy-bench --bench sim_kernel | tail -n 4

echo "== chaos gate (protocol soak + fault-injected determinism) =="
# Protocol soak: sessions must survive 20% control loss, degrade to
# port-level counting at 100%, and recover; plus the isolation check
# that a panicking + hung cell cannot take down a sweep, and the check
# that a fault-injected 32-cell sweep is bit-identical across 1 and 8
# threads (chaos RNG is plan-owned, never scheduling-dependent).
cargo test -q --release -p fancy-core --test chaos_soak --test fsm_chaos
cargo test -q --release -p fancy-bench --test chaos_determinism --test sweep_isolation

echo "== cache gate (cold -> warm round-trip, warm run executes 0 cells) =="
# A 32-cell sweep run twice against one FANCY_CACHE_DIR must execute
# zero cells the second time and reproduce the cold report bit-for-bit
# at 1 and 8 threads; corrupt records must degrade to silent misses.
cargo test -q --release -p fancy-bench --test cache_roundtrip

echo "== trace-report smoke (JSONL round-trip, fails on schema drift) =="
cargo run -q --release --example trace_report

echo "== metrics gate (golden Prometheus diff + merge determinism) =="
# The metrics plane is sim-time-only, so the Prometheus text exposition
# of the metrics_report scenario is byte-identical on any machine at any
# thread count; diffing against the committed golden catches schema or
# semantics drift. The determinism test pins the sweep-level snapshot
# merge: 1-thread == 8-thread, byte-for-byte.
cargo run -q --release --example metrics_report -- --golden tests/golden/metrics_report.prom >/dev/null
cargo test -q --release -p fancy-bench --test metrics_determinism

echo "== network-wide gate (small ISP backbone, FANcY on every edge) =="
# Fails a sample of edges on a 12-switch backbone with every edge
# monitored concurrently: exits non-zero unless coverage is 100%, and
# unless at least one SPIDER-protected edge's flight-recorder-measured
# detect+reroute latency lands inside its analytic bound. The netwide
# determinism test pins 1-thread == 8-thread per-edge outcomes.
cargo run -q --release --example isp_backbone -- --switches 12 --fail 4
cargo test -q --release -p fancy-bench --test netwide_determinism

echo "ci.sh: all green"
