#!/usr/bin/env bash
# Tier-1 gate, fully offline (all deps are vendored path crates; see
# .cargo/config.toml). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --workspace --release

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== benches compile =="
cargo build --benches --release --workspace

echo "== BENCH_sim.json refresh (kernel hot-path before/after numbers) =="
# Also enforces the zero-allocation steady-state scheduler claim: the
# bench asserts zero allocs per event and exits non-zero otherwise.
cargo bench -p fancy-bench --bench sim_kernel | tail -n 4

echo "== trace-report smoke (JSONL round-trip, fails on schema drift) =="
cargo run -q --release --example trace_report

echo "ci.sh: all green"
