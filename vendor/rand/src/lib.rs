//! Offline stand-in for the `rand` crate.
//!
//! The workspace must build without network access, so instead of the
//! registry crate it vendors this shim, which implements exactly the
//! surface the simulator and harnesses use:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (xoshiro256++,
//!   seeded through splitmix64, the same construction the real
//!   `SmallRng` documents),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`] for `f64`/`bool`/integers, [`Rng::gen_bool`], and
//!   [`Rng::gen_range`] over integer and `f64` ranges.
//!
//! Determinism is the contract: the same seed always yields the same
//! stream. The streams are *not* bit-compatible with the registry
//! `rand`; every experiment in this repo defines its own baselines, so
//! only internal reproducibility matters.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (the only constructor this repo uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Uniform value in `[0, span)` (`span == 0` means the full 64-bit range).
/// Uses Lemire's multiply-shift reduction; the slight modulo bias of the
/// plain approach is avoided without rejection loops, keeping the cost at
/// one widening multiply per sample.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform over the type's natural domain;
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    pub use super::SmallRng;
}

/// A small, fast PRNG: xoshiro256++ with splitmix64 seeding.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [0xDEAD_BEEF, 1, 2, 3];
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=254);
            assert!((1..=254).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let neg = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "p=0.3 gave {heads}/10000");
    }
}
