//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, range/`any`/`Just`/`prop_oneof!`/`prop_map`
//! strategies, and `proptest::collection::{vec, btree_set}` — on top of
//! a deterministic per-case RNG. Differences from the registry crate:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   panic message) but is not minimized.
//! * **Deterministic cases.** Case `i` of a test always sees the same
//!   inputs, derived from the test name and `i`; there is no
//!   persistence file and no time-seeded entropy. Failures therefore
//!   reproduce exactly on every run.
//!
//! Both differences are intentional: the repo needs reproducible,
//! network-free CI more than it needs minimal counterexamples.

pub mod strategy;

pub mod test_runner {
    //! Test configuration, case RNG and failure plumbing.

    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The deterministic per-case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(rand::rngs::SmallRng::seed_from_u64(
                h ^ (u64::from(case) << 32) ^ u64::from(case),
            ))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `element`; up to the drawn size (duplicates
    /// collapse, so the realized set can be smaller).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run deterministic randomized cases of each contained test function.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg); $($rest)*);
    };
    (@with ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..cfg.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let outcome = (|rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                        $body
                        Ok(())
                    })(&mut rng);
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{total} of {name} failed: {e}",
                            total = cfg.cases,
                            name = stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
        );
    }};
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 1u8..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn config_and_collections_work(
            v in crate::collection::vec(any::<u32>(), 0..10),
            s in crate::collection::btree_set(0u64..100, 0..10),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(s.len() < 10);
            prop_assert!(s.iter().all(|&e| e < 100));
        }
    }

    proptest! {
        #[test]
        fn oneof_map_and_just_compose(
            k in prop_oneof![
                (0u32..8).prop_map(|v| v * 2),
                Just(99u32),
            ],
        ) {
            prop_assert!(k == 99u32 || (k < 16u32 && k % 2u32 == 0u32));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = 0u64..1000;
        let a: Vec<u64> = (0..20)
            .map(|c| strat.new_value(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<u64> = (0..20)
            .map(|c| strat.new_value(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        let r = (|| -> Result<(), TestCaseError> {
            prop_assert!(1 == 2, "one is not two");
            Ok(())
        })();
        assert!(r.is_err());
        assert_eq!(r.unwrap_err().to_string(), "one is not two");
    }
}
