//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike registry proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; resamples until `f` accepts (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of its value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the already-boxed options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}
