//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `benchmark_group`, `iter`, `iter_batched`, `Throughput`,
//! `BatchSize`, `black_box`) with a simple best-of-N wall-clock
//! measurement and one summary line per benchmark. No statistics, no
//! HTML reports, no comparison against saved baselines — just honest
//! ns/iter numbers that work without network access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (accepted, not tuned).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Honour command-line overrides (accepted for compatibility; the
    /// shim has none).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_bench(&cfg, name, None, f);
        self
    }
}

/// A named group sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark one function in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(self.criterion, &full, self.throughput, f);
        self
    }

    /// Finish the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with fresh un-timed `setup` output per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(cfg: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up + calibration: grow the iteration count until one batch
    // costs ≳1 ms or the warm-up budget is spent.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1)
            || warm_start.elapsed() >= cfg.warm_up_time
            || iters >= 1 << 30
        {
            break;
        }
        iters *= 8;
    }

    // Measurement: best (minimum) ns/iter over the sample budget.
    let mut best = f64::INFINITY;
    let measure_start = Instant::now();
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
        if measure_start.elapsed() >= cfg.measurement_time {
            break;
        }
    }

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / best)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MB/s)", n as f64 * 1e3 / best)
        }
        None => String::new(),
    };
    println!("bench {name:<40} {best:>12.1} ns/iter{rate}");
}

/// Declare a benchmark group, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
